package fpbtree

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// servingWorkout builds a concurrent tree with opts and drives every
// operation kind from two goroutines, returning the tree.
func servingWorkout(t *testing.T, opts ...Option) *Tree {
	t.Helper()
	tr, err := New(append([]Option{
		WithVariant(DiskFirst),
		WithConcurrency(2),
		WithPageSize(4 << 10),
		WithBufferPages(256),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]Entry, 2000)
	for i := range entries {
		k := Key(2*i + 1)
		entries[i] = Entry{Key: k, TID: TupleID(k + 7)}
	}
	if err := tr.Bulkload(entries, 0.8); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]Key, 16)
			for n := 0; n < 200; n++ {
				k := Key(2*((n*37+w*511)%2000) + 1)
				if _, _, err := tr.Search(k); err != nil {
					t.Errorf("Search: %v", err)
					return
				}
				if err := tr.Insert(k+1+Key(w)*2, TupleID(k+8)); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
				if _, err := tr.Delete(k + 1 + Key(w)*2); err != nil {
					t.Errorf("Delete: %v", err)
					return
				}
				if _, err := tr.RangeScan(k, k+64, nil); err != nil {
					t.Errorf("RangeScan: %v", err)
					return
				}
				if _, err := tr.RangeScanReverse(k, k+64, nil); err != nil {
					t.Errorf("RangeScanReverse: %v", err)
					return
				}
				for i := range batch {
					batch[i] = Key(2*((n+i)%2000) + 1)
				}
				if _, err := tr.SearchBatch(batch); err != nil {
					t.Errorf("SearchBatch: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return tr
}

// TestServingPrometheusExposition is the serving-mode counterpart of
// TestConcurrentWallClockHistograms for the /metrics surface: after a
// concurrent run the exposition carries latch.* contention counters
// and op.*.wall_nanos histograms, no frozen virtual series, and —
// because zero-valued families are skipped — no series that would read
// as a measurement from a subsystem that never ran.
func TestServingPrometheusExposition(t *testing.T) {
	tr := servingWorkout(t)
	var buf bytes.Buffer
	if err := tr.MetricsSnapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "latch_shared_acquisitions") {
		t.Errorf("exposition has no latch_shared_acquisitions:\n%s", out)
	}
	for _, op := range []string{"search", "insert", "delete", "scan", "scan_rev", "batch"} {
		if !strings.Contains(out, "op_"+op+"_wall_nanos_bucket") {
			t.Errorf("exposition missing op_%s_wall_nanos buckets", op)
		}
	}
	for _, frozen := range []string{"_cycles", "_micros", "mem_", "disk_"} {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "op_") && strings.Contains(line, frozen) ||
				strings.HasPrefix(line, frozen) {
				t.Errorf("frozen virtual series leaked into the serving exposition: %q", line)
			}
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasSuffix(line, " 0") && !strings.Contains(line, "gauge") &&
			!strings.Contains(line, "_bucket{") && !strings.Contains(line, "# TYPE") {
			// Counter and histogram sample lines must not be zero; only
			// gauges and a histogram's zero bucket may render 0.
			if isGaugeLine(out, line) {
				continue
			}
			t.Errorf("zero-valued sample exported: %q", line)
		}
	}
}

// isGaugeLine reports whether line's family is declared as a gauge in
// the exposition text.
func isGaugeLine(exposition, line string) bool {
	name := line[:strings.IndexByte(line, ' ')]
	return strings.Contains(exposition, "# TYPE "+name+" gauge")
}

// TestMetricNameLint walks every registered metric name in both modes
// (simulation with disks and faults, concurrent serving) and enforces
// the stable-name alphabet, keeping the dot→underscore Prometheus
// mapping injective.
func TestMetricNameLint(t *testing.T) {
	check := func(mode string, snap obs.Snapshot) {
		for n := range snap.Counters {
			if !obs.ValidMetricName(n) {
				t.Errorf("%s: counter name %q outside [a-z0-9_.]", mode, n)
			}
		}
		for n := range snap.Gauges {
			if !obs.ValidMetricName(n) {
				t.Errorf("%s: gauge name %q outside [a-z0-9_.]", mode, n)
			}
		}
		for n := range snap.Histograms {
			if !obs.ValidMetricName(n) {
				t.Errorf("%s: histogram name %q outside [a-z0-9_.]", mode, n)
			}
		}
	}

	for _, variant := range []Variant{DiskFirst, CacheFirst, DiskOptimized, MicroIndex} {
		sim, err := New(
			WithVariant(variant),
			WithPageSize(4<<10),
			WithBufferPages(256),
			WithDisks(2),
			WithFaults(FaultConfig{}),
			WithTracing(64),
		)
		if err != nil {
			t.Fatal(err)
		}
		entries := make([]Entry, 500)
		for i := range entries {
			entries[i] = Entry{Key: Key(2*i + 1), TID: TupleID(2*i + 8)}
		}
		if err := sim.Bulkload(entries, 1.0); err != nil {
			t.Fatal(err)
		}
		if _, _, err := sim.Search(entries[7].Key); err != nil {
			t.Fatal(err)
		}
		check(sim.Name()+" simulation", sim.MetricsSnapshot())
	}

	conc := servingWorkout(t)
	check("serving", conc.MetricsSnapshot())

	concCF := servingWorkout(t, WithVariant(CacheFirst))
	check("serving cache-first", concCF.MetricsSnapshot())

	// Durable mode registers the wal.* / filestore.* families; they must
	// obey the same alphabet.
	dur, err := New(
		WithVariant(DiskFirst),
		WithPageSize(1<<10),
		WithBufferPages(256),
		WithStorePath(t.TempDir()),
		WithStoreNoFsync(),
	)
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]Entry, 200)
	for i := range entries {
		entries[i] = Entry{Key: Key(2*i + 1), TID: TupleID(2*i + 8)}
	}
	if err := dur.Bulkload(entries, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := dur.Commit(1); err != nil {
		t.Fatal(err)
	}
	snap := dur.MetricsSnapshot()
	for _, want := range []string{"wal.appends", "wal.fsyncs", "filestore.bytes_written"} {
		if _, ok := snap.Counters[want]; !ok {
			t.Errorf("durable tree snapshot missing counter %q", want)
		}
	}
	check("durable", snap)
	if err := dur.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSlowOpSpans: with tracing on and a zero-distance threshold,
// every serving operation records a wall-clock span, and the Chrome
// export renders them under the wall-clock process.
func TestSlowOpSpans(t *testing.T) {
	tr := servingWorkout(t, WithTracing(1<<12), WithSlowOpSpans(1))
	spans := 0
	for _, e := range tr.TraceTail(1 << 12) {
		// Serving mode attaches the tracer only to the wall-span source:
		// substrate events carry frozen virtual timestamps and would
		// flood the ring at serving rates, evicting the slow spans.
		if e.Disk != obs.DiskWall {
			t.Fatalf("frozen virtual-clock event leaked into the serving-mode ring: %+v", e)
		}
		spans++
		if e.A < e.Cyc {
			t.Errorf("wall span ends before it starts: %+v", e)
		}
	}
	if spans == 0 {
		t.Fatal("no wall-clock spans recorded at a 1ns threshold")
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wall clock (serving") {
		t.Error("Chrome trace missing the wall-clock process")
	}
	if !strings.Contains(buf.String(), "(slow)") {
		t.Error("Chrome trace missing slow-op spans")
	}
}

// TestSlowOpSpansDisabled: a negative threshold keeps tracing on but
// records no wall spans; without tracing the threshold is inert.
func TestSlowOpSpansDisabled(t *testing.T) {
	tr := servingWorkout(t, WithTracing(1<<12), WithSlowOpSpans(-1))
	for _, e := range tr.TraceTail(1 << 12) {
		if e.Disk == obs.DiskWall {
			t.Fatalf("wall span recorded with spans disabled: %+v", e)
		}
	}
	plain := servingWorkout(t, WithSlowOpSpans(1))
	if plain.Tracing() {
		t.Fatal("WithSlowOpSpans alone must not enable tracing")
	}
}
