// Olap: the §4.3.3 DB2 experiment as a runnable demo — an index-only
// SELECT COUNT(*) scan executed with parallel scan processes and a pool
// of I/O prefetchers fed by the jump-pointer array. Regenerates both
// Figure 19 panels through the public experiment API.
package main

import (
	"fmt"
	"log"
	"os"

	fpbtree "repro"
)

func main() {
	fmt.Println("DB2-style index-only COUNT(*) scan (Figure 19)")
	fmt.Println("Three execution strategies: synchronous reads, JPA-fed prefetcher")
	fmt.Println("pool, and the in-memory upper bound.")
	fmt.Println()
	if err := fpbtree.RunExperiment("fig19", "default", os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Expected shape (paper): the prefetch curve approaches the in-memory")
	fmt.Println("bound by ~8 prefetchers, a 2.5-5x improvement over no prefetching,")
	fmt.Println("and tracks the in-memory curve as the SMP degree grows.")
}
