// Mixed: an OLTP-style workload (searches, inserts, deletes, short
// scans) run against all four index organizations, comparing simulated
// CPU time — the §4.2 story in one program: fpB+-Trees keep the
// baselines' search performance while avoiding their page-wide data
// movement on updates.
package main

import (
	"fmt"
	"log"
	"math/rand"

	fpbtree "repro"
)

const (
	keys = 500_000
	fill = 0.8
	ops  = 20_000
)

func main() {
	fmt.Printf("OLTP mix: %d ops (50%% search, 30%% insert, 15%% delete, 5%% short scan) over %d keys at %.0f%%\n\n",
		ops, keys, fill*100)
	fmt.Printf("%-24s %14s %14s %12s %12s\n", "variant", "sim Mcycles", "cycles/op", "misses/op", "pages")

	var baseline float64
	for _, v := range []fpbtree.Variant{
		fpbtree.DiskOptimized, fpbtree.MicroIndex, fpbtree.DiskFirst, fpbtree.CacheFirst,
	} {
		cycles, misses, pages := run(v)
		if baseline == 0 {
			baseline = cycles
		}
		fmt.Printf("%-24s %14.1f %14.0f %12.1f %12d   (%.1fx)\n",
			v.String(), cycles/1e6, cycles/ops, misses/ops, pages, baseline/cycles)
	}
}

func run(v fpbtree.Variant) (cycles, misses float64, pages int) {
	tree, err := fpbtree.New(fpbtree.WithVariant(v), fpbtree.WithBufferPages(32768))
	if err != nil {
		log.Fatal(err)
	}
	entries := make([]fpbtree.Entry, keys)
	for i := range entries {
		k := fpbtree.Key(i)*4 + 1
		entries[i] = fpbtree.Entry{Key: k, TID: k}
	}
	if err := tree.Bulkload(entries, fill); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	tree.ColdCaches()
	before := tree.Stats()
	for i := 0; i < ops; i++ {
		switch r := rng.Intn(100); {
		case r < 50: // search a loaded key
			k := fpbtree.Key(rng.Intn(keys))*4 + 1
			if _, _, err := tree.Search(k); err != nil {
				log.Fatal(err)
			}
		case r < 80: // insert a fresh key (odd offset 3: no collisions)
			k := fpbtree.Key(rng.Intn(keys*2))*4 + 3
			if err := tree.Insert(k, k); err != nil {
				log.Fatal(err)
			}
		case r < 95: // delete
			k := fpbtree.Key(rng.Intn(keys))*4 + 1
			if _, err := tree.Delete(k); err != nil {
				log.Fatal(err)
			}
		default: // short range scan (~200 entries)
			start := fpbtree.Key(rng.Intn(keys))*4 + 1
			if _, err := tree.RangeScan(start, start+800, nil); err != nil {
				log.Fatal(err)
			}
		}
	}
	after := tree.Stats()
	if err := tree.CheckInvariants(); err != nil {
		log.Fatalf("%s: %v", v, err)
	}
	return float64(after.SimCycles - before.SimCycles),
		float64(after.CacheMisses - before.CacheMisses),
		tree.PageCount()
}
