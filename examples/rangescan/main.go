// Rangescan: the paper's headline I/O result in miniature — a
// nonclustered-index range scan over a simulated 10-disk array, with
// and without jump-pointer-array prefetching (§2.2, Figure 18).
//
// The same scan runs on a traditional disk-optimized B+-Tree and on
// both fpB+-Tree variants; the virtual elapsed time shows how
// prefetching leaf pages through the jump-pointer array overlaps disk
// latencies across the array.
package main

import (
	"fmt"
	"log"

	fpbtree "repro"
)

const (
	keys  = 500_000
	disks = 10
	span  = 200_000 // entries per scan
)

func buildTree(v fpbtree.Variant, jpa bool) *fpbtree.Tree {
	opts := []fpbtree.Option{
		fpbtree.WithVariant(v),
		fpbtree.WithDisks(disks),
		fpbtree.WithBufferPages(8192),
	}
	if !jpa {
		opts = append(opts, fpbtree.WithoutJPA())
	}
	tree, err := fpbtree.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	entries := make([]fpbtree.Entry, keys)
	for i := range entries {
		k := fpbtree.Key(i)*2 + 1
		entries[i] = fpbtree.Entry{Key: k, TID: k}
	}
	// Bulkload at 100%, then insert another 10% so leaf pages are no
	// longer laid out sequentially — the "mature index" scenario where
	// sequential readahead cannot help and the JPA shines.
	if err := tree.Bulkload(entries, 1.0); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < keys/10; i++ {
		k := fpbtree.Key(i*20) + 10 // even keys: never collide
		if err := tree.Insert(k, k); err != nil {
			log.Fatal(err)
		}
	}
	if err := tree.DropBufferPool(); err != nil {
		log.Fatal(err)
	}
	return tree
}

func scanTime(tree *fpbtree.Tree) (ms float64, entries int) {
	start := tree.Stats().IOClockMicros
	n, err := tree.RangeScan(100_001, 100_001+2*fpbtree.Key(span), nil)
	if err != nil {
		log.Fatal(err)
	}
	return float64(tree.Stats().IOClockMicros-start) / 1000, n
}

func main() {
	fmt.Printf("range scan of ~%d entries over %d simulated disks (mature index)\n\n", span, disks)
	type cfg struct {
		name string
		v    fpbtree.Variant
		jpa  bool
	}
	var baseline float64
	for _, c := range []cfg{
		{"disk-optimized B+tree (no prefetch)", fpbtree.DiskOptimized, false},
		{"disk-first fpB+tree + JPA prefetch", fpbtree.DiskFirst, true},
		{"cache-first fpB+tree + JPA prefetch", fpbtree.CacheFirst, true},
	} {
		tree := buildTree(c.v, c.jpa)
		ms, n := scanTime(tree)
		if baseline == 0 {
			baseline = ms
		}
		fmt.Printf("%-38s %9.1f ms  (%d entries, speedup %.1fx)\n", c.name, ms, n, baseline/ms)
	}
	fmt.Println("\nThe fpB+-Trees locate the range's end page first, then keep a")
	fmt.Println("window of leaf pages in flight via the jump-pointer array, so")
	fmt.Println("the ten disks service reads concurrently instead of one at a time.")
}
