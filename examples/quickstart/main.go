// Quickstart: build a disk-first fpB+-Tree, load it, and run the basic
// index operations through the public API.
package main

import (
	"fmt"
	"log"

	fpbtree "repro"
)

func main() {
	// A disk-first fpB+-Tree with 16 KB pages, memory resident.
	tree, err := fpbtree.New(
		fpbtree.WithVariant(fpbtree.DiskFirst),
		fpbtree.WithPageSize(16<<10),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Bulkload one million sorted entries at 100% fill.
	entries := make([]fpbtree.Entry, 1_000_000)
	for i := range entries {
		k := fpbtree.Key(i)*2 + 1
		entries[i] = fpbtree.Entry{Key: k, TID: k + 7}
	}
	if err := tree.Bulkload(entries, 1.0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d entries: height=%d, pages=%d\n",
		len(entries), tree.Height(), tree.PageCount())

	// Point lookups.
	tid, ok, err := tree.Search(2001)
	fmt.Printf("search(2001) = (%d, %v, %v)\n", tid, ok, err)
	if _, ok, _ := tree.Search(2000); ok {
		log.Fatal("found a key that was never inserted")
	}

	// Updates.
	if err := tree.Insert(2000, 42); err != nil {
		log.Fatal(err)
	}
	tid, ok, _ = tree.Search(2000)
	fmt.Printf("after insert: search(2000) = (%d, %v)\n", tid, ok)
	if _, err := tree.Delete(2000); err != nil {
		log.Fatal(err)
	}

	// A range scan: sum tuple IDs for keys in [1001, 3001].
	var sum, count uint64
	n, err := tree.RangeScan(1001, 3001, func(k fpbtree.Key, tid fpbtree.TupleID) bool {
		sum += uint64(tid)
		count++
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range scan [1001,3001]: %d entries, tid sum %d\n", n, sum)

	// The simulated-memory-hierarchy statistics behind the paper's
	// cache results.
	s := tree.Stats()
	fmt.Printf("simulated: %d cycles (busy %d, cache stalls %d), %d cache misses, %d prefetches\n",
		s.SimCycles, s.BusyCycles, s.CacheStallCycles, s.CacheMisses, s.Prefetches)

	if err := tree.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("invariants ok")
}
