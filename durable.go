package fpbtree

import (
	"errors"
	"fmt"

	"repro/internal/filestore"
	"repro/internal/idx"
	"repro/internal/wal"
)

// ErrNotDurable is returned by the durability methods on a tree that
// was not built WithStorePath.
var ErrNotDurable = errors.New("fpbtree: tree is not durable (build WithStorePath)")

// RecoveryInfo reports what opening a durable store found and redid.
type RecoveryInfo struct {
	// Tag is the recovered durable point — the tag passed to the
	// Commit or Checkpoint that established it.
	Tag uint64
	// PagesReplayed and CommitsApplied count the redo work past the
	// last checkpoint.
	PagesReplayed, CommitsApplied int
	// TailTruncated reports that the log ended in an incomplete or
	// corrupt record past the last commit — the normal signature of a
	// crash, not an error; the uncommitted tail was discarded.
	TailTruncated bool
	// Scavenge is the leaf-chain rebuild that reconstructed the tree's
	// derived state from the recovered pages.
	Scavenge ScavengeStats
}

// Durable reports whether the tree is backed by the durable page store
// (built WithStorePath).
func (t *Tree) Durable() bool { return t.durable != nil }

// RecoveredTag returns the durable point the tree was rebuilt from at
// open. ok is false for a fresh store (nothing to recover) and for
// non-durable trees.
//
// Caveat: a clean Close checkpoints the tree's full current state —
// including writes made after the last Commit — under the last
// committed tag, so after a clean shutdown the reported tag names a
// superset of the state Commit(tag) made durable. Only after a crash
// does tag identify exactly the Commit(tag) state. Callers that need
// tags to be one-to-one with states should Commit (with a fresh tag)
// immediately before Close.
func (t *Tree) RecoveredTag() (tag uint64, ok bool) {
	if t.recovery == nil {
		return 0, false
	}
	return t.recovery.Tag, true
}

// Recovery returns the full recovery report; ok as in RecoveredTag.
func (t *Tree) Recovery() (RecoveryInfo, bool) {
	if t.recovery == nil {
		return RecoveryInfo{}, false
	}
	return *t.recovery, true
}

// WALBytes reports the active log segment's size (the auto-checkpoint
// threshold input), or 0 for non-durable trees.
func (t *Tree) WALBytes() int64 {
	if t.durable == nil {
		return 0
	}
	return t.durable.WALBytes()
}

// Commit establishes a durable point: every page written so far —
// including pages still dirty in the buffer pool — is redo-logged, and
// one group-committed fsync makes the state tagged tag recoverable. A
// crash after Commit returns recovers to exactly this state; a crash
// before loses at most the writes since the previous Commit.
//
// When the active log segment has grown past CheckpointBytes, Commit
// escalates to a checkpoint (see Checkpoint) to bound recovery replay.
//
// Locking: whole-tree maintenance — in concurrent mode no operations
// may be in flight, but concurrent Commit calls are allowed and are the
// group-commit case: only the flush and the commit-record append run
// under the tree lock; the fsync happens outside it, so simultaneous
// committers coalesce onto one fsync (see WithGroupCommit).
func (t *Tree) Commit(tag uint64) error {
	if t.durable == nil {
		return ErrNotDurable
	}
	t.lock()
	err := t.pool.FlushAll()
	var lsn uint64
	if err == nil {
		lsn, err = t.durable.AppendCommit(tag, t.metaBlob())
	}
	if err == nil {
		t.lastTag = tag
	}
	t.unlock()
	if err != nil {
		return err
	}
	if err := t.durable.Sync(lsn); err != nil {
		return err
	}
	if t.ckptBytes > 0 && t.durable.WALBytes() >= t.ckptBytes {
		// The pool is already flushed and Checkpoint's leading commit is
		// this commit's re-run; the extra record is cheap and keeps
		// Checkpoint's crash-window reasoning in one place.
		return t.Checkpoint(tag)
	}
	return nil
}

// Checkpoint establishes a durable point like Commit and then advances
// the page file to it, truncating the log: recovery from here replays
// nothing. More expensive than Commit (every dirty page is written
// back); call it at operational quiet points or rely on the automatic
// CheckpointBytes escalation.
//
// Locking: whole-tree maintenance — in concurrent mode no operations
// may be in flight.
func (t *Tree) Checkpoint(tag uint64) error {
	if t.durable == nil {
		return ErrNotDurable
	}
	t.lock()
	defer t.unlock()
	if err := t.pool.FlushAll(); err != nil {
		return err
	}
	if err := t.durable.Checkpoint(tag, t.metaBlob()); err != nil {
		return err
	}
	t.lastTag = tag
	return nil
}

// Close shuts a durable tree down cleanly: the current state — all of
// it, including writes since the last Commit — is checkpointed under
// the last committed tag, then the file handles are released. Reopening
// recovers that state with nothing to replay; note the resulting tag
// aliasing described on RecoveredTag (Commit with a fresh tag before
// Close to avoid it). The tree must not be used afterwards. On
// non-durable trees Close is a no-op.
func (t *Tree) Close() error {
	if t.durable == nil {
		return nil
	}
	t.lock()
	err := t.pool.FlushAll()
	if err == nil {
		err = t.durable.Checkpoint(t.lastTag, t.metaBlob())
	}
	t.unlock()
	cerr := t.durable.Close()
	t.durable = nil
	if err != nil {
		return err
	}
	return cerr
}

// Kill drops the durable store's file handles without flushing
// anything — the crash-shaped close the kill-and-replay harness uses.
// Buffered and uncommitted state is lost exactly as in a real crash.
// The tree must not be used afterwards.
func (t *Tree) Kill() error {
	if t.durable == nil {
		return ErrNotDurable
	}
	err := t.durable.Close()
	t.durable = nil
	return err
}

// metaBlob snapshots the tree state every commit record carries: the
// variant and page size (configuration guards), the root/leftmost-leaf
// pointers, and the page allocator.
func (t *Tree) metaBlob() []byte {
	rec := t.index.(idx.Recoverable)
	next, free := t.pool.AllocState()
	return filestore.EncodeMeta(filestore.Meta{
		Variant:  uint8(t.opts.Variant),
		PageSize: uint32(t.durable.PageSize()),
		Tree:     rec.DurableMeta(),
		NextPID:  next,
		FreePIDs: free,
	})
}

// recoverFrom rebuilds the tree from the durable point wal.Recover
// found: decode the commit metadata, validate it against this tree's
// configuration, restore the allocator and the essential pointers, and
// scavenge the leaf chain to reconstruct all derived state (the
// scavenge abandons old page IDs rather than recycling them, so the
// pre-scavenge pages on disk stay intact until the next Commit).
func (t *Tree) recoverFrom(res wal.RecoveryResult) error {
	rec, ok := t.index.(idx.Recoverable)
	if !ok {
		return fmt.Errorf("fpbtree: variant %s does not support durable recovery", t.opts.Variant)
	}
	if !res.HadState || len(res.Meta) == 0 {
		// Fresh store (or the initial tag-0 checkpoint): nothing to
		// restore, RecoveredTag reports ok=false.
		return nil
	}
	m, err := filestore.DecodeMeta(res.Meta)
	if err != nil {
		return err
	}
	if m.Variant != uint8(t.opts.Variant) {
		return fmt.Errorf("fpbtree: store holds variant %s, opened as %s",
			Variant(m.Variant), t.opts.Variant)
	}
	if m.PageSize != uint32(t.durable.PageSize()) {
		// Belt and braces: the page-file header already refuses a
		// physical-size mismatch before this point.
		return fmt.Errorf("fpbtree: store page size %d, opened with %d", m.PageSize, t.durable.PageSize())
	}
	t.pool.RestoreAllocState(m.NextPID, m.FreePIDs)
	if err := rec.RestoreMeta(m.Tree); err != nil {
		return err
	}
	info := RecoveryInfo{
		Tag:            res.Tag,
		PagesReplayed:  res.PagesReplayed,
		CommitsApplied: res.CommitsApplied,
		TailTruncated:  res.TailTruncated,
	}
	if m.Tree.RootPID != 0 {
		stats, err := t.index.Scavenge()
		if err != nil {
			return err
		}
		info.Scavenge = stats
	}
	t.recovery = &info
	t.lastTag = res.Tag
	return nil
}
