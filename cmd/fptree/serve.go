package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	fpbtree "repro"
	"repro/internal/obs"
	"repro/internal/obs/httpdbg"
	"repro/internal/workload"
)

// runServeStats is the `fptree serve-stats` subcommand: a concurrent
// serving tree under a continuous operation mix, with the operations
// debug server mounted on -addr. It is the interactive way to watch
// the serving observability surface — curl /metrics for Prometheus
// exposition, /delta for windowed rates, /trace for slow-op spans.
func runServeStats(args []string) {
	fs := flag.NewFlagSet("fptree serve-stats", flag.ExitOnError)
	f := addTreeFlags(fs)
	addr := fs.String("addr", "127.0.0.1:9177", "debug server listen address")
	durFlag := fs.Duration("duration", 0, "serve this long then exit (0 = until interrupted)")
	traceEvents := fs.Int("trace-events", 1<<14, "trace ring capacity")
	slowOp := fs.Duration("slow-op", time.Millisecond, "slow-op span threshold")
	fs.Parse(args)

	// serve-stats is the serving-mode inspector: concurrency is the
	// point, so an unset -conc defaults to the scheduler width.
	if *f.conc <= 0 {
		*f.conc = runtime.GOMAXPROCS(0)
	}
	if *f.disks > 0 {
		fatal(fmt.Errorf("serve-stats: -disks is a simulation-mode feature; the serving mode is memory-resident"))
	}
	tr, err := f.build(
		fpbtree.WithTracing(*traceEvents),
		fpbtree.WithSlowOpSpans(*slowOp),
	)
	if err != nil {
		fatal(err)
	}
	g := workload.New(time.Now().UnixNano())
	if err := tr.Bulkload(g.BulkEntries(*f.keys), *f.fill); err != nil {
		fatal(err)
	}
	// Warm the buffer pool so the mix serves residents from the start.
	if _, err := tr.RangeScan(0, ^fpbtree.Key(0), nil); err != nil {
		fatal(err)
	}

	srv, err := httpdbg.Serve(*addr, httpdbg.Config{
		Snapshot: tr.MetricsSnapshot,
		Tracer:   func() *obs.Tracer { return tr.Obs().Tracer },
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()
	fmt.Printf("%s serving on %d goroutines — debug server on http://%s\n",
		tr.Name(), *f.conc, srv.Addr())
	fmt.Printf("  endpoints: /metrics /snapshot /delta /trace /debug/vars /debug/pprof\n")

	var (
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	keys, conc := uint32(*f.keys), uint32(*f.conc)
	for w := uint32(0); w < conc; w++ {
		wg.Add(1)
		go func(w uint32) {
			defer wg.Done()
			x := 2654435761*w + 97
			next := uint32(0)
			for !stop.Load() {
				x = x*1664525 + 1013904223
				switch {
				case x%16 == 0:
					// Disjoint even keys per worker, above the bulk range.
					k := fpbtree.Key(2 * (keys + 1 + next*conc + w))
					next++
					if err := tr.Insert(k, k+7); err != nil {
						fatal(err)
					}
				case x%16 == 1:
					lo := fpbtree.Key(x%keys)*2 + 1
					if _, err := tr.RangeScan(lo, lo+200, nil); err != nil {
						fatal(err)
					}
				default:
					k := fpbtree.Key(x%keys)*2 + 1
					if _, _, err := tr.Search(k); err != nil {
						fatal(err)
					}
				}
			}
		}(w)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if *durFlag > 0 {
		select {
		case <-time.After(*durFlag):
		case <-sig:
		}
	} else {
		<-sig
	}
	stop.Store(true)
	wg.Wait()

	fmt.Println()
	tr.MetricsSnapshot().Fprint(os.Stdout)
}
