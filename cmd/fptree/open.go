package main

import (
	"flag"
	"fmt"
	"time"

	fpbtree "repro"
)

// runOpen is the `fptree open` subcommand: open (or create) a durable
// tree in a store directory, report what recovery found, verify the
// recovered contents, grow the tree by a committed batch, and close
// cleanly. Running it twice against the same directory is the
// round-trip smoke test: the second run must recover exactly what the
// first committed.
func runOpen(args []string) {
	fs := flag.NewFlagSet("fptree open", flag.ExitOnError)
	variant := fs.String("variant", "disk-first", "index organization (must match the store)")
	page := fs.Int("page", 4<<10, "page size in bytes (must match the store)")
	inserts := fs.Int("inserts", 1000, "entries to insert and commit this run")
	checkpoint := fs.Bool("checkpoint", false, "checkpoint instead of commit (truncates the log)")
	noFsync := fs.Bool("no-fsync", false, "elide physical fsyncs (CI smoke runs)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("usage: fptree open [flags] DIR"))
	}
	dir := fs.Arg(0)

	v, err := parseVariant(*variant)
	if err != nil {
		fatal(err)
	}
	opts := []fpbtree.Option{
		fpbtree.WithVariant(v), fpbtree.WithPageSize(*page),
		fpbtree.WithBufferPages(8192), fpbtree.WithStorePath(dir),
	}
	if *noFsync {
		opts = append(opts, fpbtree.WithStoreNoFsync())
	}
	start := time.Now()
	tr, err := fpbtree.New(opts...)
	if err != nil {
		fatal(err)
	}
	if info, ok := tr.Recovery(); ok {
		fmt.Printf("%s: recovered tag %d in %v (replayed %d pages, %d commits; tail truncated: %v; scavenged %d entries)\n",
			dir, info.Tag, time.Since(start).Round(time.Millisecond),
			info.PagesReplayed, info.CommitsApplied, info.TailTruncated, info.Scavenge.Entries)
	} else {
		fmt.Printf("%s: fresh store\n", dir)
	}

	// Verify the recovered contents before touching anything: ascending
	// keys, the TID convention this subcommand always writes (tid=k+7).
	var maxKey, prev fpbtree.Key
	var scanErr error
	n, err := tr.RangeScan(0, 1<<31, func(k fpbtree.Key, tid fpbtree.TupleID) bool {
		if tid != k+7 {
			scanErr = fmt.Errorf("key %d recovered with tid %d, want %d", k, tid, k+7)
			return false
		}
		if k < prev {
			scanErr = fmt.Errorf("scan order regressed at key %d", k)
			return false
		}
		prev, maxKey = k, k
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err == nil {
		err = tr.CheckInvariants()
	}
	if err != nil {
		fatal(fmt.Errorf("recovered store failed verification: %w", err))
	}
	fmt.Printf("  verified %d entries, height %d, invariants ok\n", n, tr.Height())

	// Grow by a committed batch of fresh keys above everything present.
	tag, _ := tr.RecoveredTag()
	for i := 0; i < *inserts; i++ {
		k := maxKey + 2 + fpbtree.Key(i)*2
		if err := tr.Insert(k, k+7); err != nil {
			fatal(err)
		}
	}
	tag++
	if *checkpoint {
		err = tr.Checkpoint(tag)
	} else {
		err = tr.Commit(tag)
	}
	if err != nil {
		fatal(err)
	}
	snap := tr.MetricsSnapshot()
	fmt.Printf("  committed %d inserts as tag %d (wal: %d appends, %d fsyncs, %d bytes; log %d bytes)\n",
		*inserts, tag, snap.Counters["wal.appends"], snap.Counters["wal.fsyncs"],
		snap.Counters["wal.bytes_written"], tr.WALBytes())
	if err := tr.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("  closed cleanly (checkpointed %d entries)\n", n+*inserts)
}
