// Command fptree is an interactive inspector for the index structures:
// it builds a tree, runs an operation mix, validates invariants, and
// prints structure and simulation statistics.
//
// Usage:
//
//	fptree [-variant disk-first|cache-first|disk-optimized|micro] \
//	       [-keys N] [-fill F] [-page BYTES] [-disks N] \
//	       [-searches N] [-inserts N] [-deletes N] [-scan SPAN]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	fpbtree "repro"
	"repro/internal/workload"
)

func main() {
	variant := flag.String("variant", "disk-first", "index organization")
	keys := flag.Int("keys", 1000000, "bulkloaded keys")
	fill := flag.Float64("fill", 1.0, "bulkload fill factor")
	page := flag.Int("page", 16<<10, "page size in bytes")
	disks := flag.Int("disks", 0, "simulated disks (0 = memory resident)")
	searches := flag.Int("searches", 2000, "random searches to run")
	inserts := flag.Int("inserts", 2000, "random inserts to run")
	deletes := flag.Int("deletes", 2000, "random deletes to run")
	scan := flag.Int("scan", 100000, "range scan span in entries (0 = skip)")
	flag.Parse()

	v, err := parseVariant(*variant)
	if err != nil {
		fatal(err)
	}
	opts := []fpbtree.Option{
		fpbtree.WithVariant(v),
		fpbtree.WithPageSize(*page),
		fpbtree.WithBufferPages(*keys/(*page/512) + 8192),
	}
	if *disks > 0 {
		opts = append(opts, fpbtree.WithDisks(*disks))
	}
	tr, err := fpbtree.New(opts...)
	if err != nil {
		fatal(err)
	}

	g := workload.New(time.Now().UnixNano())
	start := time.Now()
	if err := tr.Bulkload(g.BulkEntries(*keys), *fill); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: bulkloaded %d keys at %.0f%% in %v\n", tr.Name(), *keys, *fill*100, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  height=%d pages=%d (%.1f MB)\n", tr.Height(), tr.PageCount(), float64(tr.PageCount())*float64(*page)/1e6)

	tr.ColdCaches()
	s0 := tr.Stats()
	for _, k := range g.SearchKeys(*keys, *searches) {
		if _, ok, err := tr.Search(k); err != nil || !ok {
			fatal(fmt.Errorf("search(%d) = %v, %v", k, ok, err))
		}
	}
	report(tr, "search", *searches, s0)

	s0 = tr.Stats()
	for _, e := range g.InsertEntries(*keys, *inserts) {
		if err := tr.Insert(e.Key, e.TID); err != nil {
			fatal(err)
		}
	}
	report(tr, "insert", *inserts, s0)

	s0 = tr.Stats()
	del, err := g.DeleteKeys(*keys, *deletes)
	if err != nil {
		fatal(err)
	}
	for _, k := range del {
		if _, err := tr.Delete(k); err != nil {
			fatal(err)
		}
	}
	report(tr, "delete", *deletes, s0)

	if *scan > 0 && *scan <= *keys {
		s0 = tr.Stats()
		scans, err := g.RangeScans(*keys, *scan, 1)
		if err != nil {
			fatal(err)
		}
		n, err := tr.RangeScan(scans[0].Start, scans[0].End, nil)
		if err != nil {
			fatal(err)
		}
		report(tr, fmt.Sprintf("scan of %d entries", n), 1, s0)
	}

	if err := tr.CheckInvariants(); err != nil {
		fatal(fmt.Errorf("invariant violation: %w", err))
	}
	fmt.Println("invariants: ok")
	if st, ok, err := tr.SpaceStats(); err != nil {
		fatal(err)
	} else if ok {
		fmt.Printf("space: %d pages (%d leaf, %d node, %d overflow), leaf utilization %.1f%%\n",
			st.Pages, st.LeafPages, st.NodePages, st.OtherPages, st.Utilization*100)
	}
}

func report(tr *fpbtree.Tree, op string, n int, before fpbtree.Stats) {
	s := tr.Stats()
	cyc := s.SimCycles - before.SimCycles
	fmt.Printf("  %-24s %8.0f sim-cycles/op  (misses/op %.1f, prefetches/op %.1f, buffer misses %d)\n",
		op+":", float64(cyc)/float64(n),
		float64(s.CacheMisses-before.CacheMisses)/float64(n),
		float64(s.Prefetches-before.Prefetches)/float64(n),
		s.BufferMisses-before.BufferMisses)
}

func parseVariant(s string) (fpbtree.Variant, error) {
	switch s {
	case "disk-first", "df":
		return fpbtree.DiskFirst, nil
	case "cache-first", "cf":
		return fpbtree.CacheFirst, nil
	case "disk-optimized", "bptree":
		return fpbtree.DiskOptimized, nil
	case "micro", "micro-indexing":
		return fpbtree.MicroIndex, nil
	}
	return 0, fmt.Errorf("unknown variant %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fptree:", err)
	os.Exit(1)
}
