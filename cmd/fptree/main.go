// Command fptree is an interactive inspector for the index structures:
// it builds a tree, runs an operation mix, validates invariants, and
// prints structure and simulation statistics.
//
// Usage:
//
//	fptree [-variant disk-first|cache-first|disk-optimized|micro] \
//	       [-keys N] [-fill F] [-page BYTES] [-disks N] [-conc N] \
//	       [-searches N] [-inserts N] [-deletes N] [-scan SPAN]
//
//	fptree stats [same flags] [-trace FILE]
//
//	fptree serve-stats [same flags] [-addr HOST:PORT] [-duration D]
//	       [-slow-op D]
//
//	fptree chaos [-variant V] [-page BYTES] [-ops N] [-seed S]
//
//	fptree open [-variant V] [-page BYTES] [-inserts N] [-checkpoint]
//	       [-no-fsync] DIR
//
// The stats subcommand runs the same workload but reports the full
// observability surface: the metrics-registry snapshot (buffer.*,
// mem.*, disk.*, tree.* counters and op.* latency histograms — plus
// the fault.* integrity counters with -integrity), the per-variant
// space statistics, and optionally a Chrome trace-event JSON file
// viewable in Perfetto.
//
// The serve-stats subcommand builds a concurrent serving tree, drives
// a continuous operation mix from -conc goroutines, and exposes the
// operations debug server (Prometheus /metrics, JSON /snapshot,
// windowed-rate /delta, Chrome-trace /trace with slow-op wall spans,
// and /debug/pprof) on -addr until -duration elapses or the process
// is interrupted.
//
// The open subcommand opens (or creates) a durable on-disk tree in DIR
// — page file plus write-ahead log — reports what crash recovery found,
// verifies the recovered contents, inserts and commits a batch, and
// closes cleanly. Running it twice against the same directory is the
// persistence round-trip smoke test.
//
// The chaos subcommand builds the tree over the fault-injecting,
// checksummed storage stack and drives the chaos-differential protocol
// (see internal/treetest): seeded read/write faults, typed-error
// recovery via Scavenge, and an exact differential between repairs. It
// exits non-zero if the fault-tolerance contract is violated.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	fpbtree "repro"
	"repro/internal/treetest"
	"repro/internal/workload"
)

// treeFlags is the flag set shared by the default run and the stats
// subcommand.
type treeFlags struct {
	variant   *string
	keys      *int
	fill      *float64
	page      *int
	disks     *int
	searches  *int
	inserts   *int
	deletes   *int
	scan      *int
	conc      *int
	integrity *bool
}

func addTreeFlags(fs *flag.FlagSet) treeFlags {
	return treeFlags{
		variant:   fs.String("variant", "disk-first", "index organization"),
		keys:      fs.Int("keys", 1000000, "bulkloaded keys"),
		fill:      fs.Float64("fill", 1.0, "bulkload fill factor"),
		page:      fs.Int("page", 16<<10, "page size in bytes"),
		disks:     fs.Int("disks", 0, "simulated disks (0 = memory resident)"),
		searches:  fs.Int("searches", 2000, "random searches to run"),
		inserts:   fs.Int("inserts", 2000, "random inserts to run"),
		deletes:   fs.Int("deletes", 2000, "random deletes to run"),
		scan:      fs.Int("scan", 100000, "range scan span in entries (0 = skip)"),
		conc:      fs.Int("conc", 0, "build WithConcurrency(N): sharded latched pool, frozen simulators (0 = simulation mode)"),
		integrity: fs.Bool("integrity", false, "interpose the checksum/fault storage stack (registers the fault.* metrics)"),
	}
}

func (f treeFlags) build(extra ...fpbtree.Option) (*fpbtree.Tree, error) {
	v, err := parseVariant(*f.variant)
	if err != nil {
		return nil, err
	}
	opts := []fpbtree.Option{
		fpbtree.WithVariant(v),
		fpbtree.WithPageSize(*f.page),
		fpbtree.WithBufferPages(*f.keys/(*f.page/512) + 8192),
	}
	if *f.disks > 0 {
		opts = append(opts, fpbtree.WithDisks(*f.disks))
	}
	if *f.conc > 0 {
		opts = append(opts, fpbtree.WithConcurrency(*f.conc))
	}
	if *f.integrity {
		// Rule-less injector under the checksum layer: every read is
		// verified and counted, no faults fire unless steered later.
		opts = append(opts, fpbtree.WithFaults(fpbtree.FaultConfig{}))
	}
	return fpbtree.New(append(opts, extra...)...)
}

// runMix executes the flagged operation mix against tr, optionally
// reporting per-phase simulation cost.
func (f treeFlags) runMix(tr *fpbtree.Tree, g *workload.Gen, verbose bool) error {
	s0 := tr.Stats()
	for _, k := range g.SearchKeys(*f.keys, *f.searches) {
		if _, ok, err := tr.Search(k); err != nil || !ok {
			return fmt.Errorf("search(%d) = %v, %v", k, ok, err)
		}
	}
	if verbose {
		report(tr, "search", *f.searches, s0)
	}

	s0 = tr.Stats()
	for _, e := range g.InsertEntries(*f.keys, *f.inserts) {
		if err := tr.Insert(e.Key, e.TID); err != nil {
			return err
		}
	}
	if verbose {
		report(tr, "insert", *f.inserts, s0)
	}

	s0 = tr.Stats()
	del, err := g.DeleteKeys(*f.keys, *f.deletes)
	if err != nil {
		return err
	}
	for _, k := range del {
		if _, err := tr.Delete(k); err != nil {
			return err
		}
	}
	if verbose {
		report(tr, "delete", *f.deletes, s0)
	}

	if *f.scan > 0 && *f.scan <= *f.keys {
		s0 = tr.Stats()
		scans, err := g.RangeScans(*f.keys, *f.scan, 1)
		if err != nil {
			return err
		}
		n, err := tr.RangeScan(scans[0].Start, scans[0].End, nil)
		if err != nil {
			return err
		}
		if verbose {
			report(tr, fmt.Sprintf("scan of %d entries", n), 1, s0)
		}
	}
	return nil
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "stats" {
		runStats(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve-stats" {
		runServeStats(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "chaos" {
		runChaos(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "open" {
		runOpen(os.Args[2:])
		return
	}

	f := addTreeFlags(flag.CommandLine)
	flag.Parse()

	tr, err := f.build()
	if err != nil {
		fatal(err)
	}

	g := workload.New(time.Now().UnixNano())
	start := time.Now()
	if err := tr.Bulkload(g.BulkEntries(*f.keys), *f.fill); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: bulkloaded %d keys at %.0f%% in %v\n", tr.Name(), *f.keys, *f.fill*100, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  height=%d pages=%d (%.1f MB)\n", tr.Height(), tr.PageCount(), float64(tr.PageCount())*float64(*f.page)/1e6)

	tr.ColdCaches()
	if err := f.runMix(tr, g, true); err != nil {
		fatal(err)
	}

	if err := tr.CheckInvariants(); err != nil {
		fatal(fmt.Errorf("invariant violation: %w", err))
	}
	fmt.Println("invariants: ok")
	st, err := tr.SpaceStats()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("space: %d pages (%d leaf, %d node, %d overflow), leaf utilization %.1f%%\n",
		st.Pages, st.LeafPages, st.NodePages, st.OtherPages, st.Utilization*100)
}

// runStats is the `fptree stats` subcommand: same workload, full
// observability dump.
func runStats(args []string) {
	if err := statsRun(args, os.Stdout); err != nil {
		fatal(err)
	}
}

// statsRun does the work of `fptree stats`, writing the report to w.
// Split from runStats so tests can assert on the dump (e.g. that the
// fault.* metrics appear when -integrity interposes the storage
// stack) without exiting the process.
func statsRun(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("fptree stats", flag.ExitOnError)
	f := addTreeFlags(fs)
	traceFile := fs.String("trace", "", "write Chrome trace-event JSON here")
	traceEvents := fs.Int("trace-events", 1<<16, "trace ring capacity (with -trace)")
	fs.Parse(args)

	var extra []fpbtree.Option
	if *traceFile != "" {
		extra = append(extra, fpbtree.WithTracing(*traceEvents))
	}
	tr, err := f.build(extra...)
	if err != nil {
		return err
	}

	g := workload.New(time.Now().UnixNano())
	if err := tr.Bulkload(g.BulkEntries(*f.keys), *f.fill); err != nil {
		return err
	}
	tr.ColdCaches()
	if err := f.runMix(tr, g, false); err != nil {
		return err
	}

	// Space stats walk through the buffer pool, so snapshot first.
	snap := tr.MetricsSnapshot()
	st, err := tr.SpaceStats()
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%s (%s), %d keys, page %d B", tr.Name(), tr.Variant(), *f.keys, *f.page)
	if *f.disks > 0 {
		fmt.Fprintf(w, ", %d disks", *f.disks)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "height=%d pages=%d leaf=%d node=%d overflow=%d entries=%d utilization=%.1f%%\n\n",
		tr.Height(), st.Pages, st.LeafPages, st.NodePages, st.OtherPages, st.Entries, st.Utilization*100)
	snap.Fprint(w)

	if *traceFile != "" {
		tw, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		if err := tr.WriteTrace(tw); err != nil {
			return err
		}
		if err := tw.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\ntrace: wrote %s (load in ui.perfetto.dev)\n", *traceFile)
	}
	return nil
}

// runChaos is the `fptree chaos` subcommand: the chaos-differential
// protocol against one variant, with the report printed on success and
// the metrics snapshot dumped on failure.
func runChaos(args []string) {
	fs := flag.NewFlagSet("fptree chaos", flag.ExitOnError)
	variant := fs.String("variant", "disk-first", "index organization")
	page := fs.Int("page", 8<<10, "page size in bytes")
	ops := fs.Int("ops", 20000, "operations to drive under fault injection")
	seed := fs.Int64("seed", 0, "fault schedule seed (0 = time-derived)")
	fs.Parse(args)

	v, err := parseVariant(*variant)
	if err != nil {
		fatal(err)
	}
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	tr, err := fpbtree.New(
		fpbtree.WithVariant(v),
		fpbtree.WithPageSize(*page),
		fpbtree.WithBufferPages(32),
		fpbtree.WithFaults(treetest.DefaultChaosConfig(*seed)),
	)
	if err != nil {
		fatal(err)
	}
	rep, err := treetest.Chaos(treetest.ChaosTarget{
		Index:    tr,
		Faults:   tr.Faults(),
		Pinned:   tr.PinnedPages,
		BufStats: tr.BufferStats,
		DropPool: tr.DropBufferPool,
	}, *seed, *ops)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fptree chaos: %s seed %d: %v\n", tr.Name(), *seed, err)
		tr.MetricsSnapshot().Fprint(os.Stderr)
		os.Exit(1)
	}
	fmt.Printf("%s chaos (seed %d): %v\n", tr.Name(), *seed, rep)
}

func report(tr *fpbtree.Tree, op string, n int, before fpbtree.Stats) {
	s := tr.Stats()
	cyc := s.SimCycles - before.SimCycles
	fmt.Printf("  %-24s %8.0f sim-cycles/op  (misses/op %.1f, prefetches/op %.1f, buffer misses %d)\n",
		op+":", float64(cyc)/float64(n),
		float64(s.CacheMisses-before.CacheMisses)/float64(n),
		float64(s.Prefetches-before.Prefetches)/float64(n),
		s.BufferMisses-before.BufferMisses)
}

func parseVariant(s string) (fpbtree.Variant, error) {
	switch s {
	case "disk-first", "df":
		return fpbtree.DiskFirst, nil
	case "cache-first", "cf":
		return fpbtree.CacheFirst, nil
	case "disk-optimized", "bptree":
		return fpbtree.DiskOptimized, nil
	case "micro", "micro-indexing":
		return fpbtree.MicroIndex, nil
	}
	return 0, fmt.Errorf("unknown variant %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fptree:", err)
	os.Exit(1)
}
