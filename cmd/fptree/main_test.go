package main

import (
	"strings"
	"testing"
)

// statsArgs keeps the test workload small enough to run in CI.
var statsArgs = []string{"-keys", "5000", "-searches", "100", "-inserts", "100", "-deletes", "50", "-scan", "1000"}

// TestStatsDumpsFaultMetrics: `fptree stats -integrity` interposes the
// checksum/fault storage stack, and the dump must then include every
// registered metric family — in particular the fault.* counters, which
// regressed silently once before the stats path polled the full
// registry.
func TestStatsDumpsFaultMetrics(t *testing.T) {
	var buf strings.Builder
	if err := statsRun(append([]string{"-integrity"}, statsArgs...), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"fault.reads", "fault.writes", "fault.injected", // integrity stack
		"buffer.gets", "mem.cycles", "tree.searches", // always-on families
		"op.search.cycles", // simulation-mode latency histograms
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stats -integrity dump missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "buffer.checksum_failures") {
		t.Errorf("stats -integrity dump missing checksum verification counters:\n%s", out)
	}
}

// TestStatsWithoutIntegrity: without -integrity no fault.* families
// exist — their presence would claim an interposed stack that isn't
// there.
func TestStatsWithoutIntegrity(t *testing.T) {
	var buf strings.Builder
	if err := statsRun(statsArgs, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "fault.") {
		t.Errorf("stats dump reports fault.* metrics without -integrity:\n%s", buf.String())
	}
}
