// Command fpcheck is a randomized structural verifier: it drives every
// index variant with seeded random operation streams (including
// duplicate-heavy mixes), cross-checks results against a reference
// model and against each other, validates structural invariants after
// every batch, and differentially checks SearchBatch against per-key
// Search on the keys the stream has touched. Exit status 0 means all
// runs passed.
//
// Usage:
//
//	fpcheck [-rounds N] [-ops N] [-keys N] [-seed S] [-page BYTES]
//	        [-dump-events N] [-chaos] [-crash]
//
// With -crash, fpcheck runs the kill-and-replay crash-recovery
// protocol: every variant runs a committed workload over the durable
// page store + WAL, is killed without flushing, and is then re-crashed
// at every log truncation point — each cut must recover to exactly the
// newest durable point at or below it (see internal/treetest). -rounds
// is the seed count per variant; -ops and -keys are ignored (the
// protocol fixes its own workload).
//
// With -chaos, fpcheck instead runs the chaos-differential protocol:
// every variant is built over the fault-injecting, checksummed storage
// stack and driven through a seeded schedule of transient/permanent
// read errors, torn writes, bit flips, and write failures. The run
// fails if any fault escapes the typed error taxonomy, leaks a pin,
// survives as silent corruption, or leaves a tree that scavenge cannot
// rebuild. -keys is ignored in chaos mode (the protocol fixes its own
// initial population).
//
// Every run keeps the virtual-time event tracer on; when a run fails,
// fpcheck dumps the metrics snapshot and the last -dump-events trace
// events so the failure arrives with its recent history attached.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	fpbtree "repro"
	"repro/internal/treetest"
)

func main() {
	rounds := flag.Int("rounds", 4, "independent random runs per variant")
	ops := flag.Int("ops", 10000, "operations per run")
	keys := flag.Int("keys", 20000, "initial bulkloaded keys")
	seed := flag.Int64("seed", 0, "base seed (0 = time-derived)")
	page := flag.Int("page", 8<<10, "page size in bytes")
	dumpEvents := flag.Int("dump-events", 32, "trace events to dump on failure")
	chaos := flag.Bool("chaos", false, "run the chaos-differential protocol under fault injection")
	crash := flag.Bool("crash", false, "run the kill-and-replay crash-recovery protocol over the durable store")
	conc := flag.Int("conc", 0, "build chaos trees WithConcurrency(N): exercises the sharded latched pool (0 = simulation pool)")
	flag.Parse()

	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	mode := "structural"
	if *chaos {
		mode = "chaos"
	}
	if *crash {
		mode = "crash-recovery"
	}
	fmt.Printf("fpcheck: %s mode, %d rounds x %d ops, %dKB pages, seed %d\n",
		mode, *rounds, *ops, *page>>10, *seed)

	failures := 0
	for _, v := range []fpbtree.Variant{
		fpbtree.DiskOptimized, fpbtree.MicroIndex, fpbtree.DiskFirst, fpbtree.CacheFirst,
	} {
		for r := 0; r < *rounds; r++ {
			s := *seed + int64(r)*7919
			var tr *fpbtree.Tree
			var err error
			switch {
			case *crash:
				err = crashOne(v, *page, s)
			case *chaos:
				tr, err = chaosOne(v, *page, *ops, *conc, s)
			default:
				tr, err = runOne(v, *page, *keys, *ops, s)
			}
			if err != nil {
				fmt.Printf("FAIL %-16s round %d (seed %d): %v\n", v, r, s, err)
				dumpObservability(tr, *dumpEvents)
				failures++
			} else {
				fmt.Printf("ok   %-16s round %d\n", v, r)
			}
		}
	}
	if failures > 0 {
		fmt.Printf("fpcheck: %d failures\n", failures)
		os.Exit(1)
	}
	fmt.Println("fpcheck: all runs passed")
}

// crashOne drives one variant through the kill-and-replay protocol: a
// deterministic committed workload over the durable store, killed
// without flushing, then re-crashed at every WAL truncation point and
// checked for exact recovery to the newest durable point below each
// cut. Physical fsyncs are elided — the protocol simulates power loss
// by truncation, which fsync does not influence.
func crashOne(v fpbtree.Variant, page int, seed int64) error {
	scratch, err := os.MkdirTemp("", "fpcheck-crash-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)
	open := func(dir string) (treetest.CrashTree, error) {
		return fpbtree.New(
			fpbtree.WithVariant(v), fpbtree.WithPageSize(page),
			fpbtree.WithBufferPages(256), fpbtree.WithStorePath(dir),
			fpbtree.WithStoreNoFsync(), fpbtree.WithCheckpointBytes(-1))
	}
	rep, err := treetest.CrashReplay(open, scratch, seed)
	if err != nil {
		return err
	}
	if rep.Replays == 0 || rep.Fallbacks == 0 {
		return fmt.Errorf("protocol exercised too little: %v", rep)
	}
	fmt.Printf("     %-16s %v\n", v, rep)
	return nil
}

// chaosOne drives one variant through the chaos-differential protocol
// on the facade's full storage stack (fault injector + checksum layer).
// The pool is deliberately small so steady-state evictions route writes
// and re-reads through the injector.
func chaosOne(v fpbtree.Variant, page, ops, conc int, seed int64) (*fpbtree.Tree, error) {
	opts := []fpbtree.Option{
		fpbtree.WithVariant(v),
		fpbtree.WithPageSize(page),
		fpbtree.WithBufferPages(32),
		fpbtree.WithFaults(treetest.DefaultChaosConfig(seed)),
		fpbtree.WithTracing(1 << 12),
	}
	if conc > 0 {
		opts = append(opts, fpbtree.WithConcurrency(conc))
	}
	tr, err := fpbtree.New(opts...)
	if err != nil {
		return nil, err
	}
	tg := treetest.ChaosTarget{
		Index:    tr,
		Faults:   tr.Faults(),
		Pinned:   tr.PinnedPages,
		BufStats: tr.BufferStats,
		DropPool: tr.DropBufferPool,
	}
	rep, err := treetest.Chaos(tg, seed, ops)
	if err != nil {
		return tr, err
	}
	if rep.Faults.Injected == 0 {
		return tr, fmt.Errorf("schedule injected no faults — the run proved nothing")
	}
	fmt.Printf("     %-16s %v\n", v, rep)
	return tr, nil
}

// runOne returns the tree it drove alongside any failure so the caller
// can dump its metrics and trace tail.
func runOne(v fpbtree.Variant, page, keys, ops int, seed int64) (*fpbtree.Tree, error) {
	tr, err := fpbtree.New(
		fpbtree.WithVariant(v),
		fpbtree.WithPageSize(page),
		fpbtree.WithBufferPages(keys/8+16384),
		fpbtree.WithTracing(1<<12),
	)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	// Reference multiset (duplicates allowed).
	ref := map[fpbtree.Key]int{}
	entries := make([]fpbtree.Entry, keys)
	for i := range entries {
		k := fpbtree.Key(i)*3 + 1
		entries[i] = fpbtree.Entry{Key: k, TID: k + 7}
		ref[k]++
	}
	if err := tr.Bulkload(entries, 0.6+rng.Float64()*0.4); err != nil {
		return tr, err
	}

	// Keys the stream touches, batched up for the SearchBatch
	// differential (so batches mix present, deleted, and absent keys).
	var pending []fpbtree.Key
	var batchOut []fpbtree.SearchResult
	checkBatch := func() error {
		if len(pending) == 0 {
			return nil
		}
		var err error
		batchOut, err = tr.SearchBatchInto(pending, batchOut[:0])
		if err != nil {
			return fmt.Errorf("SearchBatch of %d keys: %w", len(pending), err)
		}
		for i, k := range pending {
			tid, ok, err := tr.Search(k)
			if err != nil {
				return fmt.Errorf("search %d during batch check: %w", k, err)
			}
			got := batchOut[i]
			if got.Found != ok || (ok && got.TID != tid) {
				return fmt.Errorf("SearchBatch[%d] for key %d = (%d,%v), Search says (%d,%v)",
					i, k, got.TID, got.Found, tid, ok)
			}
		}
		pending = pending[:0]
		return nil
	}

	maxKey := fpbtree.Key(keys*3 + 100)
	for i := 0; i < ops; i++ {
		k := fpbtree.Key(rng.Intn(int(maxKey)))/3*3 + 1 // collides often: duplicates
		pending = append(pending, k)
		if len(pending) >= 256 {
			if err := checkBatch(); err != nil {
				return tr, fmt.Errorf("after op %d: %w", i, err)
			}
		}
		switch rng.Intn(5) {
		case 0, 1:
			if err := tr.Insert(k, k+7); err != nil {
				return tr, fmt.Errorf("insert %d: %w", k, err)
			}
			ref[k]++
		case 2:
			ok, err := tr.Delete(k)
			if err != nil {
				return tr, fmt.Errorf("delete %d: %w", k, err)
			}
			if ok != (ref[k] > 0) {
				return tr, fmt.Errorf("delete(%d) = %v, reference count %d", k, ok, ref[k])
			}
			if ok {
				ref[k]--
			}
		case 3:
			_, ok, err := tr.Search(k)
			if err != nil {
				return tr, fmt.Errorf("search %d: %w", k, err)
			}
			if ok != (ref[k] > 0) {
				return tr, fmt.Errorf("search(%d) = %v, reference count %d", k, ok, ref[k])
			}
		case 4:
			lo := fpbtree.Key(rng.Intn(int(maxKey)))
			hi := lo + fpbtree.Key(rng.Intn(3000))
			want := 0
			for kk, c := range ref {
				if kk >= lo && kk <= hi {
					want += c
				}
			}
			n, err := tr.RangeScan(lo, hi, nil)
			if err != nil {
				return tr, fmt.Errorf("scan [%d,%d]: %w", lo, hi, err)
			}
			if n != want {
				return tr, fmt.Errorf("scan [%d,%d] = %d entries, reference %d", lo, hi, n, want)
			}
			rn, err := tr.RangeScanReverse(lo, hi, nil)
			if err != nil {
				return tr, fmt.Errorf("reverse scan [%d,%d]: %w", lo, hi, err)
			}
			if rn != n {
				return tr, fmt.Errorf("reverse scan [%d,%d] = %d, forward %d", lo, hi, rn, n)
			}
		}
		if i%2500 == 2499 {
			if err := tr.CheckInvariants(); err != nil {
				return tr, fmt.Errorf("invariants after op %d: %w", i, err)
			}
		}
	}

	if err := checkBatch(); err != nil {
		return tr, fmt.Errorf("final batch check: %w", err)
	}

	// Final: full scan equals the reference multiset, in order.
	var keysSorted []fpbtree.Key
	total := 0
	for k, c := range ref {
		if c > 0 {
			keysSorted = append(keysSorted, k)
			total += c
		}
	}
	sort.Slice(keysSorted, func(i, j int) bool { return keysSorted[i] < keysSorted[j] })
	seen := map[fpbtree.Key]int{}
	var prev fpbtree.Key
	var scanErr error
	n, err := tr.RangeScan(0, 1<<31, func(k fpbtree.Key, tid fpbtree.TupleID) bool {
		if k < prev {
			scanErr = fmt.Errorf("scan order regressed at %d", k)
			return false
		}
		prev = k
		seen[k]++
		return true
	})
	if err != nil {
		return tr, err
	}
	if scanErr != nil {
		return tr, scanErr
	}
	if n != total {
		return tr, fmt.Errorf("final scan saw %d entries, reference %d", n, total)
	}
	for _, k := range keysSorted {
		if seen[k] != ref[k] {
			return tr, fmt.Errorf("key %d: scan saw %d, reference %d", k, seen[k], ref[k])
		}
	}
	return tr, tr.CheckInvariants()
}

// dumpObservability prints the failed run's metrics snapshot and the
// tail of its trace ring.
func dumpObservability(tr *fpbtree.Tree, events int) {
	if tr == nil {
		return
	}
	fmt.Println("  --- metrics at failure ---")
	snap := tr.MetricsSnapshot()
	snap.Fprint(os.Stdout)
	tail := tr.TraceTail(events)
	if len(tail) == 0 {
		return
	}
	fmt.Printf("  --- last %d trace events ---\n", len(tail))
	for _, e := range tail {
		fmt.Println("  " + e.String())
	}
}
