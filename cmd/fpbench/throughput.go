package main

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	fpbtree "repro"
	"repro/internal/obs"
	"repro/internal/workload"
)

// servingDebug carries the -debug-addr observability wiring through
// the serving sweep: each cell's tree is published into cur so the
// debug server's /metrics, /snapshot and /trace handlers always read
// the live cell, and each tree is built with a trace ring plus the
// slow-op span threshold so sampled wall-clock spans land in /trace.
type servingDebug struct {
	cur         atomic.Pointer[fpbtree.Tree]
	traceEvents int
	slowOp      time.Duration
}

// snapshot polls the live cell's registry (empty before the first cell
// finishes bulkloading).
func (d *servingDebug) snapshot() obs.Snapshot {
	if t := d.cur.Load(); t != nil {
		return t.MetricsSnapshot()
	}
	return obs.Snapshot{}
}

// tracer exposes the live cell's trace ring, nil before the first cell.
func (d *servingDebug) tracer() *obs.Tracer {
	if t := d.cur.Load(); t != nil {
		return t.Obs().Tracer
	}
	return nil
}

// throughputEntry is one wall-clock serving measurement in the
// -benchjson report.
type throughputEntry struct {
	Workload  string  `json:"workload"`
	Reads     string  `json:"reads"` // "optimistic" or "pessimistic"
	Threads   int     `json:"threads"`
	Seconds   float64 `json:"seconds"`
	Ops       uint64  `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Nanos  uint64  `json:"p50_nanos"`
	P99Nanos  uint64  `json:"p99_nanos"`
	// Latch-protocol counters from the cell's metrics snapshot, so a
	// report shows whether the optimistic path actually ran latch-free
	// (readonly + optimistic ⇒ shared acquisitions and locked gets stay
	// at their bulkload/warmup baseline) and how contended it was.
	OptRestarts    uint64 `json:"opt_restarts"`
	OptFallbacks   uint64 `json:"opt_fallbacks"`
	SharedLatches  uint64 `json:"shared_latch_acquisitions"`
	PoolLockedGets uint64 `json:"pool_locked_gets"`
}

// throughputSweep runs the wall-clock serving benchmark: a read-only
// thread sweep (1, 2, ... up to threads, powers of two) plus the mixed
// and scan workloads at full width. wl narrows the run to one workload
// ("all" runs the standard sweep). reads selects the point-lookup
// protocol — "optimistic" (the serving-mode default), "pessimistic"
// (shared latch coupling), or "both", which duplicates every cell so
// the two protocols can be compared on one report.
func throughputSweep(wl, reads string, threads, keys int, dur time.Duration, fileStore bool, dbg *servingDebug) ([]throughputEntry, error) {
	type cell struct {
		workload    string
		threads     int
		pessimistic bool
	}
	var modes []bool
	switch reads {
	case "optimistic":
		modes = []bool{false}
	case "pessimistic":
		modes = []bool{true}
	case "both":
		modes = []bool{false, true}
	default:
		return nil, fmt.Errorf("unknown reads mode %q (want optimistic, pessimistic, or both)", reads)
	}
	var cells []cell
	for _, pess := range modes {
		addSweep := func(name string) {
			first := len(cells)
			for n := 1; n <= threads; n *= 2 {
				cells = append(cells, cell{name, n, pess})
			}
			if cells[len(cells)-1].threads != threads && len(cells) > first {
				cells = append(cells, cell{name, threads, pess}) // threads not a power of two
			}
		}
		switch wl {
		case "all":
			addSweep("readonly")
			cells = append(cells, cell{"mixed", threads, pess}, cell{"scan", threads, pess})
		case "readonly":
			addSweep("readonly")
		case "mixed", "scan":
			cells = append(cells, cell{wl, threads, pess})
		default:
			return nil, fmt.Errorf("unknown workload %q (want readonly, mixed, scan, or all)", wl)
		}
	}

	var out []throughputEntry
	for _, c := range cells {
		e, err := runThroughput(c.workload, c.threads, keys, dur, fileStore, c.pessimistic, dbg)
		if err != nil {
			return nil, err
		}
		fmt.Printf("# %-8s %-11s threads=%d  %.0f ops/sec  p50=%s p99=%s (%d ops in %.2fs, %d opt restarts)\n",
			e.Workload, e.Reads, e.Threads, e.OpsPerSec,
			time.Duration(e.P50Nanos), time.Duration(e.P99Nanos), e.Ops, e.Seconds, e.OptRestarts)
		out = append(out, e)
	}
	return out, nil
}

// runThroughput measures one (workload, threads) cell on a fresh tree
// — memory-resident by default, or over the durable file store with
// fileStore — `threads` goroutines issue operations for dur, recording
// per-op wall latency into one shared histogram.
func runThroughput(wl string, threads, keys int, dur time.Duration, fileStore, pessimistic bool, dbg *servingDebug) (throughputEntry, error) {
	opts := []fpbtree.Option{
		fpbtree.WithVariant(fpbtree.DiskFirst),
		fpbtree.WithConcurrency(threads),
	}
	if pessimistic {
		opts = append(opts, fpbtree.WithPessimisticReads())
	}
	if fileStore {
		dir, err := os.MkdirTemp("", "fpbench-store-*")
		if err != nil {
			return throughputEntry{}, err
		}
		defer os.RemoveAll(dir)
		opts = append(opts, fpbtree.WithStorePath(dir))
	}
	if dbg != nil {
		opts = append(opts,
			fpbtree.WithTracing(dbg.traceEvents),
			fpbtree.WithSlowOpSpans(dbg.slowOp))
	}
	tr, err := fpbtree.New(opts...)
	if err != nil {
		return throughputEntry{}, err
	}
	if dbg != nil {
		dbg.cur.Store(tr)
	}
	gen := workload.New(42)
	if err := tr.Bulkload(gen.BulkEntries(keys), 1.0); err != nil {
		return throughputEntry{}, err
	}
	// Warm the buffer pool so the measured phase serves residents.
	if _, err := tr.RangeScan(0, ^fpbtree.Key(0), nil); err != nil {
		return throughputEntry{}, err
	}

	var (
		hist     obs.Histogram
		totalOps atomic.Uint64
		stop     atomic.Bool
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stop.Store(true)
	}

	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var (
				ops  uint64
				x    = uint32(2654435761*uint32(w) + 97)
				next = uint32(0) // per-thread disjoint insert counter
				t0   = time.Now()
			)
			for !stop.Load() {
				x = x*1664525 + 1013904223
				var err error
				switch {
				case wl == "scan":
					lo := fpbtree.Key(x%uint32(keys))*2 + 1
					_, err = tr.RangeScan(lo, lo+200, nil)
				case wl == "mixed" && x%10 == 0:
					// Disjoint even keys per thread, above the bulk range.
					k := fpbtree.Key(2 * (uint32(keys) + 1 + next*uint32(threads) + uint32(w)))
					next++
					err = tr.Insert(k, k+7)
				default:
					k := fpbtree.Key(x%uint32(keys))*2 + 1
					var tid fpbtree.TupleID
					var ok bool
					tid, ok, err = tr.Search(k)
					if err == nil && (!ok || tid != k+7) {
						fail(fmt.Errorf("%s: Search(%d) = (%d,%v), want (%d,true)", wl, k, tid, ok, k+7))
						return
					}
				}
				if err != nil {
					fail(fmt.Errorf("%s: %w", wl, err))
					return
				}
				t1 := time.Now()
				hist.Record(uint64(t1.Sub(t0)))
				t0 = t1
				ops++
			}
			totalOps.Add(ops)
		}(w)
	}
	timer := time.AfterFunc(dur, func() { stop.Store(true) })
	wg.Wait()
	timer.Stop()
	elapsed := time.Since(start)
	if firstErr != nil {
		return throughputEntry{}, firstErr
	}
	if n := tr.PinnedPages(); n != 0 {
		return throughputEntry{}, fmt.Errorf("%s threads=%d: %d pinned pages leaked", wl, threads, n)
	}
	mode := "optimistic"
	if pessimistic {
		mode = "pessimistic"
	}
	snap := tr.MetricsSnapshot()
	return throughputEntry{
		Workload:       wl,
		Reads:          mode,
		Threads:        threads,
		Seconds:        elapsed.Seconds(),
		Ops:            totalOps.Load(),
		OpsPerSec:      float64(totalOps.Load()) / elapsed.Seconds(),
		P50Nanos:       hist.Quantile(0.50),
		P99Nanos:       hist.Quantile(0.99),
		OptRestarts:    snap.Counters["latch.opt_restarts"],
		OptFallbacks:   snap.Counters["latch.opt_fallbacks"],
		SharedLatches:  snap.Counters["latch.shared_acquisitions"],
		PoolLockedGets: snap.Counters["pool.shard.locked_gets"],
	}, nil
}
