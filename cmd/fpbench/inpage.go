package main

import (
	"fmt"

	"repro/internal/core"
)

// inPageWidths is the leaf node width sweep: cache-line-sized nodes up
// to a few lines, plus 0 for the variant's default width.
var inPageWidths = []int{64, 128, 256, 512, 1024, 0}

// inPageSweep runs the in-page search microbenchmark over every leaf
// width and implementation. Implementations must agree: within one
// width, every impl's probe-answer checksum has to match, so a kernel
// that got faster by being wrong fails the sweep instead of winning it.
func inPageSweep(iters int) ([]core.InPageBenchResult, error) {
	out := make([]core.InPageBenchResult, 0, len(inPageWidths)*len(core.InPageSearchImpls()))
	for _, w := range inPageWidths {
		rs, err := core.BenchInPageSearch(w, iters)
		if err != nil {
			return nil, err
		}
		for _, r := range rs[1:] {
			if r.Checksum != rs[0].Checksum {
				return nil, fmt.Errorf("in-page sweep: impl %q checksum %#x disagrees with %q checksum %#x at leaf width %d",
					r.Impl, r.Checksum, rs[0].Impl, rs[0].Checksum, r.LeafBytes)
			}
		}
		out = append(out, rs...)
	}
	return out, nil
}

// printInPage renders the sweep as one row per leaf width with a
// column per implementation plus the swar-over-branchless speedup.
func printInPage(entries []core.InPageBenchResult) {
	impls := core.InPageSearchImpls()
	fmt.Printf("%-12s %-10s", "leaf_bytes", "keys/node")
	for _, impl := range impls {
		fmt.Printf(" %12s", impl+" ns")
	}
	fmt.Printf(" %16s\n", "swar/branchless")
	byWidth := map[int]map[string]core.InPageBenchResult{}
	var widths []int
	for _, e := range entries {
		if byWidth[e.LeafBytes] == nil {
			byWidth[e.LeafBytes] = map[string]core.InPageBenchResult{}
			widths = append(widths, e.LeafBytes)
		}
		byWidth[e.LeafBytes][e.Impl] = e
	}
	for _, w := range widths {
		row := byWidth[w]
		any := row[impls[0]]
		fmt.Printf("%-12d %-10d", w, any.Keys)
		for _, impl := range impls {
			fmt.Printf(" %12.2f", row[impl].NsPerOp)
		}
		speedup := row["branchless"].NsPerOp / row["swar"].NsPerOp
		fmt.Printf(" %15.2fx\n", speedup)
	}
}
