// Command fpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	fpbench [-scale quick|default|paper] [-csv] [-parallel] [-benchjson FILE]
//	        [-metrics FILE] [-trace FILE] [-cpuprofile FILE] [-memprofile FILE]
//	        [-threads N -duration D -workload readonly|mixed|scan|all -keys N]
//	        [-debug-addr HOST:PORT [-slow-op D]]
//	        [experiment ...]
//
// With no experiment arguments it runs the full suite in paper order.
// Experiment IDs: table2, fig3b, fig10, fig11, fig12, fig13, fig14,
// fig15, fig16, fig17, fig18, fig19, ablation.
//
// -parallel fans each experiment's cells over one worker per CPU; the
// tables are identical to a serial run. -benchjson FILE times every
// experiment both serially and in parallel and writes the wall-clock
// comparison as JSON (e.g. BENCH_1.json).
//
// -threads N switches to the wall-clock serving benchmark instead of
// the simulation experiments: N goroutines drive a memory-resident
// WithConcurrency tree for -duration per cell (a read-only thread
// sweep plus mixed and scan workloads), reporting real ops/sec and
// p50/p99 latency. With -benchjson the sweep is written as the
// "throughput" section (e.g. BENCH_concurrency.json). -debug-addr
// starts the operations debug server (Prometheus /metrics, JSON
// /snapshot, windowed-rate /delta, Chrome-trace /trace, /debug/pprof)
// over the live cell for the duration of the sweep; -slow-op sets the
// wall-clock threshold above which operations record spans into the
// trace ring.
//
// -metrics FILE writes the final metrics-registry snapshot (counters
// summed over every cell of every experiment run) as JSON. -trace FILE
// writes the retained virtual-time trace events as Chrome trace-event
// JSON, viewable in ui.perfetto.dev. Either flag attaches the
// observability layer, which forces the experiment cells to run
// serially. -cpuprofile and -memprofile write standard pprof profiles
// of the benchmark process itself.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/obs/httpdbg"
)

type benchEntry struct {
	ID              string  `json:"id"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
}

type benchReport struct {
	Scale       string       `json:"scale"`
	Workers     int          `json:"workers"`
	CPUs        int          `json:"cpus"`
	GoMaxProcs  int          `json:"gomaxprocs"`
	GoVersion   string       `json:"go_version"`
	GitCommit   string       `json:"git_commit,omitempty"`
	Experiments []benchEntry `json:"experiments,omitempty"`
	// Degraded marks a throughput report recorded without real
	// parallelism (GOMAXPROCS or CPU count of 1): the thread sweep then
	// measures scheduler interleaving, not scalability, and must not be
	// compared against multi-core recordings.
	Degraded   bool                     `json:"degraded,omitempty"`
	Throughput []throughputEntry        `json:"throughput,omitempty"`
	Durability []durabilityEntry        `json:"durability,omitempty"`
	InPage     []core.InPageBenchResult `json:"inpage,omitempty"`
}

// gitCommit reports the VCS revision stamped into the binary, if any
// (absent under plain `go run` from a dirty checkout).
func gitCommit() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			return s.Value
		}
	}
	return ""
}

func main() {
	scale := flag.String("scale", "default", "workload scale: quick, default, or paper")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	parallel := flag.Bool("parallel", false, "run experiment cells on one worker per CPU")
	benchJSON := flag.String("benchjson", "", "time each experiment serially and in parallel, write JSON to this file")
	metricsFile := flag.String("metrics", "", "write the metrics-registry snapshot as JSON to this file")
	traceFile := flag.String("trace", "", "write Chrome trace-event JSON to this file")
	traceEvents := flag.Int("trace-events", 1<<18, "trace ring capacity (with -trace)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	integrity := flag.Bool("integrity", false, "run with the checksum/fault storage stack interposed (cache tables must be byte-identical)")
	threads := flag.Int("threads", 0, "wall-clock serving benchmark: goroutine count (0 runs the simulation experiments)")
	duration := flag.Duration("duration", 2*time.Second, "per-cell measurement time (with -threads)")
	workloadName := flag.String("workload", "all", "serving workload: readonly, mixed, scan, or all (with -threads)")
	benchKeys := flag.Int("keys", 1_000_000, "keys in the serving benchmark tree (with -threads)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /snapshot, /delta, /trace and /debug/pprof on this address during the serving benchmark (with -threads)")
	slowOp := flag.Duration("slow-op", time.Millisecond, "slow-op span threshold for the serving benchmark's trace ring (with -debug-addr)")
	storeMode := flag.String("store", "sim", "serving-benchmark page store: sim (memory) or file (durable OS-file store + WAL, with -threads)")
	readsMode := flag.String("reads", "optimistic", "serving-benchmark point-lookup protocol: optimistic, pessimistic, or both (with -threads)")
	walBench := flag.Bool("walbench", false, "run the WAL group-commit sweep (commits/sec and fsyncs/commit vs batch size) instead of the experiments")
	inPage := flag.Bool("inpage", false, "run the in-page search microbenchmark (node widths x implementations) instead of the experiments")
	flag.Parse()

	if *inPage {
		iters := map[string]int{"quick": 200_000, "default": 2_000_000, "paper": 8_000_000}[*scale]
		if iters == 0 {
			fatal(fmt.Errorf("unknown -scale %q (want quick, default, or paper)", *scale))
		}
		fmt.Printf("# in-page search microbenchmark — %d unpredictable probes per cell, wall-clock\n", iters)
		entries, err := inPageSweep(iters)
		if err != nil {
			fatal(err)
		}
		printInPage(entries)
		if *benchJSON != "" {
			report := benchReport{
				Scale:      "inpage",
				CPUs:       runtime.NumCPU(),
				GoMaxProcs: runtime.GOMAXPROCS(0),
				GoVersion:  runtime.Version(),
				GitCommit:  gitCommit(),
				InPage:     entries,
			}
			data, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				fatal(err)
			}
			data = append(data, '\n')
			if err := os.WriteFile(*benchJSON, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("# wrote %s\n", *benchJSON)
		}
		return
	}

	if *walBench {
		fmt.Printf("# WAL group-commit sweep — %v per cell, real fsyncs on a real file\n", *duration)
		entries, err := durabilitySweep(*duration)
		if err != nil {
			fatal(err)
		}
		if *benchJSON != "" {
			report := benchReport{
				Scale:      "durability",
				CPUs:       runtime.NumCPU(),
				GoMaxProcs: runtime.GOMAXPROCS(0),
				GoVersion:  runtime.Version(),
				GitCommit:  gitCommit(),
				Durability: entries,
			}
			data, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				fatal(err)
			}
			data = append(data, '\n')
			if err := os.WriteFile(*benchJSON, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("# wrote %s\n", *benchJSON)
		}
		return
	}

	if *threads > 0 {
		fmt.Printf("# fpB+-Tree wall-clock serving benchmark — %d key tree, %v per cell\n", *benchKeys, *duration)
		degraded := runtime.GOMAXPROCS(0) == 1 || runtime.NumCPU() == 1
		if degraded {
			fmt.Fprintf(os.Stderr,
				"#\n# WARNING: GOMAXPROCS=%d on %d CPU(s) — the thread sweep cannot exercise\n"+
					"# real parallelism. Throughput numbers measure goroutine interleaving on a\n"+
					"# single core, NOT scalability; the report is stamped \"degraded\": true.\n"+
					"# Re-record on a multi-core runner before comparing protocols.\n#\n",
				runtime.GOMAXPROCS(0), runtime.NumCPU())
		}
		var dbg *servingDebug
		if *debugAddr != "" {
			dbg = &servingDebug{traceEvents: 1 << 14, slowOp: *slowOp}
			srv, err := httpdbg.Serve(*debugAddr, httpdbg.Config{
				Snapshot: dbg.snapshot,
				Tracer:   dbg.tracer,
			})
			if err != nil {
				fatal(err)
			}
			defer srv.Close()
			fmt.Printf("# debug server on http://%s (/metrics /snapshot /delta /trace /debug/pprof)\n", srv.Addr())
		}
		if *storeMode != "sim" && *storeMode != "file" {
			fatal(fmt.Errorf("unknown -store %q (want sim or file)", *storeMode))
		}
		entries, err := throughputSweep(*workloadName, *readsMode, *threads, *benchKeys, *duration, *storeMode == "file", dbg)
		if err != nil {
			fatal(err)
		}
		if *benchJSON != "" {
			report := benchReport{
				Scale:      "throughput",
				CPUs:       runtime.NumCPU(),
				GoMaxProcs: runtime.GOMAXPROCS(0),
				GoVersion:  runtime.Version(),
				GitCommit:  gitCommit(),
				Degraded:   degraded,
				Throughput: entries,
			}
			data, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				fatal(err)
			}
			data = append(data, '\n')
			if err := os.WriteFile(*benchJSON, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("# wrote %s\n", *benchJSON)
		}
		return
	}

	if *list {
		for _, id := range harness.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	p, err := harness.ParamsFor(*scale)
	if err != nil {
		fatal(err)
	}
	if *parallel {
		p.Workers = harness.DefaultWorkers()
	}
	p.Integrity = *integrity

	var ob *obs.Obs
	if *metricsFile != "" || *traceFile != "" {
		if *traceFile != "" {
			ob = obs.NewTraced(*traceEvents)
		} else {
			ob = obs.New()
		}
		p.Obs = ob
		if *parallel {
			fmt.Fprintln(os.Stderr, "fpbench: -metrics/-trace force serial cells; ignoring -parallel")
		}
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = []string{"table2", "fig3b", "fig10", "fig11", "fig12", "fig13",
			"fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "ablation"}
	}
	fmt.Printf("# fpB+-Tree reproduction — scale=%s\n\n", p.Name)

	if *benchJSON != "" {
		report := benchReport{
			Scale:      p.Name,
			Workers:    harness.DefaultWorkers(),
			CPUs:       runtime.NumCPU(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
			GitCommit:  gitCommit(),
		}
		for _, id := range ids {
			serial := p
			serial.Workers = 1
			start := time.Now()
			tables, err := harness.Run(id, serial)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", id, err))
			}
			serialDur := time.Since(start)

			par := p
			par.Workers = harness.DefaultWorkers()
			start = time.Now()
			if _, err := harness.Run(id, par); err != nil {
				fatal(fmt.Errorf("%s (parallel): %w", id, err))
			}
			parallelDur := time.Since(start)

			printTables(tables, *csv)
			fmt.Printf("# %s: serial %v, parallel %v (%d workers)\n\n",
				id, serialDur.Round(time.Millisecond), parallelDur.Round(time.Millisecond), par.Workers)
			report.Experiments = append(report.Experiments, benchEntry{
				ID:              id,
				SerialSeconds:   serialDur.Seconds(),
				ParallelSeconds: parallelDur.Seconds(),
				Speedup:         serialDur.Seconds() / parallelDur.Seconds(),
			})
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*benchJSON, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote %s\n", *benchJSON)
	} else {
		for _, id := range ids {
			start := time.Now()
			tables, err := harness.Run(id, p)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", id, err))
			}
			printTables(tables, *csv)
			fmt.Printf("# %s completed in %v\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}

	if ob != nil {
		if *metricsFile != "" {
			f, err := os.Create(*metricsFile)
			if err != nil {
				fatal(err)
			}
			if err := ob.Reg.Snapshot().WriteJSON(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("# wrote %s\n", *metricsFile)
		}
		if *traceFile != "" {
			f, err := os.Create(*traceFile)
			if err != nil {
				fatal(err)
			}
			if err := ob.Tracer.WriteChrome(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("# wrote %s\n", *traceFile)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func printTables(tables []*harness.Table, csv bool) {
	for _, t := range tables {
		if csv {
			fmt.Printf("# %s: %s\n", t.ID, t.Title)
			t.CSV(os.Stdout)
			fmt.Println()
		} else {
			t.Fprint(os.Stdout)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpbench:", err)
	os.Exit(1)
}
