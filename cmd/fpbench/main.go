// Command fpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	fpbench [-scale quick|default|paper] [-csv] [experiment ...]
//
// With no experiment arguments it runs the full suite in paper order.
// Experiment IDs: table2, fig3b, fig10, fig11, fig12, fig13, fig14,
// fig15, fig16, fig17, fig18, fig19, ablation.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	scale := flag.String("scale", "default", "workload scale: quick, default, or paper")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, id := range harness.IDs() {
			fmt.Println(id)
		}
		return
	}

	p, err := harness.ParamsFor(*scale)
	if err != nil {
		fatal(err)
	}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = []string{"table2", "fig3b", "fig10", "fig11", "fig12", "fig13",
			"fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "ablation"}
	}
	fmt.Printf("# fpB+-Tree reproduction — scale=%s\n\n", p.Name)
	for _, id := range ids {
		start := time.Now()
		tables, err := harness.Run(id, p)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		for _, t := range tables {
			if *csv {
				fmt.Printf("# %s: %s\n", t.ID, t.Title)
				t.CSV(os.Stdout)
				fmt.Println()
			} else {
				t.Fprint(os.Stdout)
			}
		}
		fmt.Printf("# %s completed in %v\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpbench:", err)
	os.Exit(1)
}
