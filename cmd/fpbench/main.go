// Command fpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	fpbench [-scale quick|default|paper] [-csv] [-parallel] [-benchjson FILE] [experiment ...]
//
// With no experiment arguments it runs the full suite in paper order.
// Experiment IDs: table2, fig3b, fig10, fig11, fig12, fig13, fig14,
// fig15, fig16, fig17, fig18, fig19, ablation.
//
// -parallel fans each experiment's cells over one worker per CPU; the
// tables are identical to a serial run. -benchjson FILE times every
// experiment both serially and in parallel and writes the wall-clock
// comparison as JSON (e.g. BENCH_1.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/harness"
)

type benchEntry struct {
	ID              string  `json:"id"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
}

type benchReport struct {
	Scale       string       `json:"scale"`
	Workers     int          `json:"workers"`
	CPUs        int          `json:"cpus"`
	Experiments []benchEntry `json:"experiments"`
}

func main() {
	scale := flag.String("scale", "default", "workload scale: quick, default, or paper")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	parallel := flag.Bool("parallel", false, "run experiment cells on one worker per CPU")
	benchJSON := flag.String("benchjson", "", "time each experiment serially and in parallel, write JSON to this file")
	flag.Parse()

	if *list {
		for _, id := range harness.IDs() {
			fmt.Println(id)
		}
		return
	}

	p, err := harness.ParamsFor(*scale)
	if err != nil {
		fatal(err)
	}
	if *parallel {
		p.Workers = harness.DefaultWorkers()
	}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = []string{"table2", "fig3b", "fig10", "fig11", "fig12", "fig13",
			"fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "ablation"}
	}
	fmt.Printf("# fpB+-Tree reproduction — scale=%s\n\n", p.Name)

	if *benchJSON != "" {
		report := benchReport{Scale: p.Name, Workers: harness.DefaultWorkers(), CPUs: runtime.NumCPU()}
		for _, id := range ids {
			serial := p
			serial.Workers = 1
			start := time.Now()
			tables, err := harness.Run(id, serial)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", id, err))
			}
			serialDur := time.Since(start)

			par := p
			par.Workers = harness.DefaultWorkers()
			start = time.Now()
			if _, err := harness.Run(id, par); err != nil {
				fatal(fmt.Errorf("%s (parallel): %w", id, err))
			}
			parallelDur := time.Since(start)

			printTables(tables, *csv)
			fmt.Printf("# %s: serial %v, parallel %v (%d workers)\n\n",
				id, serialDur.Round(time.Millisecond), parallelDur.Round(time.Millisecond), par.Workers)
			report.Experiments = append(report.Experiments, benchEntry{
				ID:              id,
				SerialSeconds:   serialDur.Seconds(),
				ParallelSeconds: parallelDur.Seconds(),
				Speedup:         serialDur.Seconds() / parallelDur.Seconds(),
			})
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*benchJSON, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("# wrote %s\n", *benchJSON)
		return
	}

	for _, id := range ids {
		start := time.Now()
		tables, err := harness.Run(id, p)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		printTables(tables, *csv)
		fmt.Printf("# %s completed in %v\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func printTables(tables []*harness.Table, csv bool) {
	for _, t := range tables {
		if csv {
			fmt.Printf("# %s: %s\n", t.ID, t.Title)
			t.CSV(os.Stdout)
			fmt.Println()
		} else {
			t.Fprint(os.Stdout)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpbench:", err)
	os.Exit(1)
}
