package main

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wal"
)

// durabilityEntry is one cell of the group-commit sweep in the
// -benchjson report: a fixed pool of committers hammering the log while
// the leader-based fsync coalescing runs at one batch-size setting.
type durabilityEntry struct {
	Committers       int     `json:"committers"`
	GroupSize        int     `json:"group_size"`
	GroupDelayMicros int64   `json:"group_delay_micros"`
	Seconds          float64 `json:"seconds"`
	Commits          uint64  `json:"commits"`
	CommitsPerSec    float64 `json:"commits_per_sec"`
	Fsyncs           uint64  `json:"fsyncs"`
	FsyncsPerCommit  float64 `json:"fsyncs_per_commit"`
	P50Nanos         uint64  `json:"p50_nanos"`
	P99Nanos         uint64  `json:"p99_nanos"`
}

// durabilitySweep measures group commit against the real filesystem
// (fsyncs included — they ARE the experiment): single-committer and
// batched cells, sweeping the leader's batch size. Each commit appends
// one page image and one commit record, then blocks until its LSN is
// durable; commits/sec and fsyncs/commit show the coalescing win.
func durabilitySweep(dur time.Duration) ([]durabilityEntry, error) {
	type cell struct {
		committers, groupSize int
		delay                 time.Duration
	}
	cells := []cell{{1, 1, 0}} // baseline: every commit pays its own fsync
	for _, gs := range []int{1, 2, 4, 8, 16, 32} {
		cells = append(cells, cell{16, gs, 200 * time.Microsecond})
	}
	var out []durabilityEntry
	for _, c := range cells {
		e, err := runDurabilityCell(c.committers, c.groupSize, c.delay, dur)
		if err != nil {
			return nil, err
		}
		fmt.Printf("# committers=%-2d group=%-2d  %7.0f commits/sec  %.3f fsyncs/commit  p50=%s p99=%s\n",
			e.Committers, e.GroupSize, e.CommitsPerSec, e.FsyncsPerCommit,
			time.Duration(e.P50Nanos), time.Duration(e.P99Nanos))
		out = append(out, e)
	}
	return out, nil
}

func runDurabilityCell(committers, groupSize int, delay, dur time.Duration) (durabilityEntry, error) {
	dir, err := os.MkdirTemp("", "fpbench-wal-*")
	if err != nil {
		return durabilityEntry{}, err
	}
	defer os.RemoveAll(dir)
	log, err := wal.Start(dir, wal.RecoveryResult{NextLSN: 1},
		wal.Options{GroupSize: groupSize, GroupDelay: delay})
	if err != nil {
		return durabilityEntry{}, err
	}
	defer log.Close()

	img := make([]byte, 4<<10)
	for i := range img {
		img[i] = byte(i)
	}
	var (
		hist    obs.Histogram
		commits atomic.Uint64
		stop    atomic.Bool
		wg      sync.WaitGroup
		errMu   sync.Mutex
		lastErr error
	)
	start := time.Now()
	for w := 0; w < committers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tag := uint64(w) << 32
			for !stop.Load() {
				t0 := time.Now()
				if _, err := log.AppendPage(uint32(w+1), img); err != nil {
					errMu.Lock()
					lastErr = err
					errMu.Unlock()
					return
				}
				tag++
				lsn, err := log.AppendCommit(tag, nil)
				if err == nil {
					err = log.Sync(lsn)
				}
				if err != nil {
					errMu.Lock()
					lastErr = err
					errMu.Unlock()
					return
				}
				hist.Record(uint64(time.Since(t0)))
				commits.Add(1)
			}
		}(w)
	}
	timer := time.AfterFunc(dur, func() { stop.Store(true) })
	wg.Wait()
	timer.Stop()
	elapsed := time.Since(start)
	if lastErr != nil {
		return durabilityEntry{}, lastErr
	}
	st := log.Stats()
	n := commits.Load()
	return durabilityEntry{
		Committers:       committers,
		GroupSize:        groupSize,
		GroupDelayMicros: delay.Microseconds(),
		Seconds:          elapsed.Seconds(),
		Commits:          n,
		CommitsPerSec:    float64(n) / elapsed.Seconds(),
		Fsyncs:           st.Fsyncs,
		FsyncsPerCommit:  float64(st.Fsyncs) / float64(n),
		P50Nanos:         hist.Quantile(0.50),
		P99Nanos:         hist.Quantile(0.99),
	}, nil
}
