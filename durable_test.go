package fpbtree

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// durableTestOpts builds the standard small durable configuration the
// facade tests use: 1 KB pages so trees get multiple levels quickly,
// and no physical fsyncs (ordering and accounting are unchanged; the
// tests kill by dropping state, not by power loss).
func durableTestOpts(dir string, v Variant, extra ...Option) []Option {
	opts := []Option{
		WithVariant(v), WithPageSize(1 << 10), WithBufferPages(256),
		WithStorePath(dir), WithStoreNoFsync(),
	}
	return append(opts, extra...)
}

func scanAll(t *testing.T, tr *Tree) map[Key]TupleID {
	t.Helper()
	got := make(map[Key]TupleID)
	if _, err := tr.RangeScan(0, ^Key(0), func(k Key, tid TupleID) bool {
		got[k] = tid
		return true
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return got
}

func assertState(t *testing.T, tr *Tree, want map[Key]TupleID, label string) {
	t.Helper()
	got := scanAll(t, tr)
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", label, len(got), len(want))
	}
	for k, tid := range want {
		if got[k] != tid {
			t.Fatalf("%s: key %d = %v, want %v", label, k, got[k], tid)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("%s: invariants: %v", label, err)
	}
	if n := tr.PinnedPages(); n != 0 {
		t.Fatalf("%s: %d pages still pinned", label, n)
	}
}

// TestDurableCommitKillRecover is the facade-level durability contract,
// run for every variant: a committed state survives a crash-shaped
// close exactly, an uncommitted tail is discarded, and a clean Close
// preserves everything.
func TestDurableCommitKillRecover(t *testing.T) {
	for _, v := range []Variant{DiskFirst, CacheFirst, DiskOptimized, MicroIndex} {
		t.Run(v.String(), func(t *testing.T) {
			dir := t.TempDir()
			tr, err := New(durableTestOpts(dir, v)...)
			if err != nil {
				t.Fatal(err)
			}
			if !tr.Durable() {
				t.Fatal("tree not durable")
			}
			if _, ok := tr.RecoveredTag(); ok {
				t.Fatal("fresh store reported a recovered tag")
			}

			var load []Entry
			model := make(map[Key]TupleID)
			for i := 1; i <= 300; i++ {
				k := Key(i * 3)
				tid := TupleID(uint32(i)*16 + uint32(i%7))
				load = append(load, Entry{Key: k, TID: tid})
				model[k] = tid
			}
			if err := tr.Bulkload(load, 0.8); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 40; i++ {
				k := Key(i*3 + 2)
				tid := TupleID(9000 + uint32(i))
				if err := tr.Insert(k, tid); err != nil {
					t.Fatal(err)
				}
				model[k] = tid
			}
			if err := tr.Commit(7); err != nil {
				t.Fatal(err)
			}
			// Uncommitted writes: must NOT survive the kill.
			for i := 0; i < 25; i++ {
				if err := tr.Insert(Key(i*3+1), TupleID(7777)); err != nil {
					t.Fatal(err)
				}
			}
			if err := tr.Kill(); err != nil {
				t.Fatal(err)
			}

			tr2, err := New(durableTestOpts(dir, v)...)
			if err != nil {
				t.Fatalf("reopen after kill: %v", err)
			}
			if tag, ok := tr2.RecoveredTag(); !ok || tag != 7 {
				t.Fatalf("recovered tag %d ok=%v, want 7", tag, ok)
			}
			if info, _ := tr2.Recovery(); info.PagesReplayed == 0 {
				t.Fatalf("recovery replayed no pages: %+v", info)
			}
			assertState(t, tr2, model, "after kill+recover")

			// The recovered tree is live: write, commit, close cleanly.
			// Close preserves even the post-commit writes.
			if err := tr2.Insert(5, TupleID(55)); err != nil {
				t.Fatal(err)
			}
			if err := tr2.Commit(8); err != nil {
				t.Fatal(err)
			}
			model[5] = TupleID(55)
			if err := tr2.Insert(7, TupleID(77)); err != nil {
				t.Fatal(err)
			}
			model[7] = TupleID(77)
			if err := tr2.Close(); err != nil {
				t.Fatal(err)
			}

			tr3, err := New(durableTestOpts(dir, v)...)
			if err != nil {
				t.Fatalf("reopen after close: %v", err)
			}
			if tag, ok := tr3.RecoveredTag(); !ok || tag != 8 {
				t.Fatalf("post-close tag %d ok=%v, want 8", tag, ok)
			}
			if info, _ := tr3.Recovery(); info.PagesReplayed != 0 {
				t.Fatalf("clean close left replay work: %+v", info)
			}
			assertState(t, tr3, model, "after clean close")
			if err := tr3.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDurableWithChecksums stacks the integrity layer over the durable
// store: the stateless trailer survives a restart and the logical page
// size the tree sees is unchanged.
func TestDurableWithChecksums(t *testing.T) {
	dir := t.TempDir()
	tr, err := New(durableTestOpts(dir, DiskFirst, WithChecksums())...)
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[Key]TupleID)
	for i := 1; i <= 200; i++ {
		tid := TupleID(uint32(i))
		if err := tr.Insert(Key(i), tid); err != nil {
			t.Fatal(err)
		}
		model[Key(i)] = tid
	}
	if err := tr.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Kill(); err != nil {
		t.Fatal(err)
	}
	tr2, err := New(durableTestOpts(dir, DiskFirst, WithChecksums())...)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	assertState(t, tr2, model, "checksummed recover")
}

// TestDurableAutoCheckpoint: a tiny CheckpointBytes threshold makes
// Commit escalate, so the WAL stays bounded and recovery replays
// nothing.
func TestDurableAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	tr, err := New(durableTestOpts(dir, DiskOptimized, WithCheckpointBytes(8<<10))...)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 5; round++ {
		for i := 0; i < 100; i++ {
			if err := tr.Insert(Key(round*1000+i), TupleID(uint32(i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.Commit(uint64(round)); err != nil {
			t.Fatal(err)
		}
	}
	// Each commit redo-logs >8 KB of 1 KB pages, so every one escalates:
	// the active segment holds only the latest checkpoint.
	if wb := tr.WALBytes(); wb > 4<<10 {
		t.Fatalf("WAL grew unbounded under auto-checkpoint: %d bytes", wb)
	}
	if err := tr.Kill(); err != nil {
		t.Fatal(err)
	}
	tr2, err := New(durableTestOpts(dir, DiskOptimized)...)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if tag, ok := tr2.RecoveredTag(); !ok || tag != 5 {
		t.Fatalf("recovered tag %d ok=%v, want 5", tag, ok)
	}
	if info, _ := tr2.Recovery(); info.PagesReplayed != 0 {
		t.Fatalf("checkpointed store still replayed %d pages", info.PagesReplayed)
	}
}

// TestDurableGroupCommitCoalesces: concurrent Tree.Commit callers share
// fsyncs. Only the flush and the commit-record append run under the
// tree lock; the fsync runs outside it, so several commits can be
// pending at once and the group-commit leader batches them (a lock held
// across the sync would serialize commits and reduce the linger to pure
// added latency).
func TestDurableGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	tr, err := New(durableTestOpts(dir, DiskOptimized,
		WithConcurrency(4), WithGroupCommit(4, 2*time.Millisecond), WithCheckpointBytes(-1))...)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := 1; i <= 100; i++ {
		if err := tr.Insert(Key(i), TupleID(uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	const workers, per = 4, 25
	var tags atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := tr.Commit(tags.Add(1)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	snap := tr.MetricsSnapshot()
	commits, fsyncs := snap.Counters["wal.commits"], snap.Counters["wal.fsyncs"]
	if commits < workers*per {
		t.Fatalf("only %d commits recorded", commits)
	}
	if fsyncs >= commits {
		t.Fatalf("no coalescing: %d fsyncs for %d commits", fsyncs, commits)
	}
}

// TestDurableConfigGuards: mismatched reopens fail loudly, durability
// calls on non-durable trees are typed, and the error re-exports
// classify.
func TestDurableConfigGuards(t *testing.T) {
	dir := t.TempDir()
	tr, err := New(durableTestOpts(dir, DiskFirst)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, TupleID(1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	// Variant mismatch is refused at open.
	if _, err := New(durableTestOpts(dir, CacheFirst)...); err == nil {
		t.Fatal("variant mismatch accepted")
	}
	// Physical page-size mismatch is refused by the page-file header.
	if _, err := New(WithVariant(DiskFirst), WithPageSize(2<<10), WithBufferPages(256),
		WithStorePath(dir), WithStoreNoFsync()); err == nil {
		t.Fatal("page-size mismatch accepted")
	}
	// StorePath and Disks are mutually exclusive.
	if _, err := New(WithStorePath(t.TempDir()), WithDisks(4)); err == nil {
		t.Fatal("StorePath+Disks accepted")
	}

	mem, err := New(WithVariant(DiskFirst))
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Commit(1); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Commit on memory tree: %v", err)
	}
	if err := mem.Checkpoint(1); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Checkpoint on memory tree: %v", err)
	}
	if err := mem.Close(); err != nil {
		t.Fatalf("Close on memory tree should be a no-op: %v", err)
	}

	// The re-exported sentinels classify wrapped storage errors.
	if !errors.Is(fmt.Errorf("x: %w", ErrWALCorrupt), ErrWALCorrupt) ||
		!errors.Is(fmt.Errorf("x: %w", ErrShortWrite), ErrShortWrite) {
		t.Fatal("error re-exports do not classify")
	}
}
