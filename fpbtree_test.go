package fpbtree

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/workload"
)

func allVariants() []Variant {
	return []Variant{DiskFirst, CacheFirst, DiskOptimized, MicroIndex}
}

func TestFacadeLifecycle(t *testing.T) {
	for _, v := range allVariants() {
		t.Run(v.String(), func(t *testing.T) {
			tr, err := New(WithVariant(v), WithPageSize(4<<10), WithBufferPages(16384))
			if err != nil {
				t.Fatal(err)
			}
			g := workload.New(1)
			es := g.BulkEntries(20000)
			if err := tr.Bulkload(es, 0.8); err != nil {
				t.Fatal(err)
			}
			if tid, ok, err := tr.Search(es[777].Key); err != nil || !ok || tid != es[777].TID {
				t.Fatalf("search: %v %v %v", tid, ok, err)
			}
			if err := tr.Insert(es[777].Key+1, 99); err != nil {
				t.Fatal(err)
			}
			if ok, err := tr.Delete(es[777].Key + 1); err != nil || !ok {
				t.Fatalf("delete: %v %v", ok, err)
			}
			n, err := tr.RangeScan(es[100].Key, es[199].Key, nil)
			if err != nil || n != 100 {
				t.Fatalf("scan: n=%d err=%v", n, err)
			}
			var lastK Key
			rn, err := tr.RangeScanReverse(es[100].Key, es[199].Key, func(k Key, _ TupleID) bool {
				if lastK != 0 && k >= lastK {
					t.Fatalf("reverse scan not descending: %d then %d", lastK, k)
				}
				lastK = k
				return true
			})
			if err != nil || rn != 100 {
				t.Fatalf("reverse scan: n=%d err=%v", rn, err)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if tr.Height() < 1 || tr.PageCount() < 1 {
				t.Fatalf("height=%d pages=%d", tr.Height(), tr.PageCount())
			}
			s := tr.Stats()
			if s.SimCycles == 0 || s.BufferGets == 0 {
				t.Fatalf("stats not accumulating: %+v", s)
			}
		})
	}
}

func TestFacadeOptionValidation(t *testing.T) {
	if _, err := New(WithPageSize(1000)); err == nil {
		t.Fatal("accepted unaligned page size")
	}
	if _, err := New(WithBufferPages(0)); err == nil {
		t.Fatal("accepted zero buffer pool")
	}
	if _, err := New(WithVariant(Variant(99))); err == nil {
		t.Fatal("accepted unknown variant")
	}
}

func TestFacadeDiskBacked(t *testing.T) {
	tr, err := New(WithVariant(DiskFirst), WithDisks(4), WithBufferPages(512))
	if err != nil {
		t.Fatal(err)
	}
	g := workload.New(2)
	if err := tr.Bulkload(g.BulkEntries(100000), 1.0); err != nil {
		t.Fatal(err)
	}
	if err := tr.DropBufferPool(); err != nil {
		t.Fatal(err)
	}
	tr.ResetBufferStats()
	if _, ok, err := tr.Search(2001); err != nil || !ok {
		t.Fatalf("search: %v %v", ok, err)
	}
	s := tr.Stats()
	if s.BufferMisses == 0 {
		t.Fatal("cold search should miss the buffer pool")
	}
	if s.IOClockMicros == 0 {
		t.Fatal("virtual I/O time should advance on disk reads")
	}
}

func TestFacadeJPAImprovesScanIO(t *testing.T) {
	scanTime := func(jpa bool) uint64 {
		opts := []Option{WithVariant(DiskFirst), WithDisks(8), WithBufferPages(2048)}
		if !jpa {
			opts = append(opts, WithoutJPA())
		}
		tr, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		g := workload.New(3)
		if err := tr.Bulkload(g.BulkEntries(200000), 1.0); err != nil {
			t.Fatal(err)
		}
		if err := tr.DropBufferPool(); err != nil {
			t.Fatal(err)
		}
		before := tr.Stats().IOClockMicros
		if _, err := tr.RangeScan(1, 200001, nil); err != nil {
			t.Fatal(err)
		}
		return tr.Stats().IOClockMicros - before
	}
	plain := scanTime(false)
	pf := scanTime(true)
	if pf*2 > plain {
		t.Fatalf("JPA scan should be at least 2x faster: %d vs %d", pf, plain)
	}
}

func TestRunExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("table2", "quick", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "704B") {
		t.Fatalf("table2 output missing expected value: %s", buf.String())
	}
	if err := RunExperiment("nope", "quick", &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := RunExperiment("table2", "nope", &buf); err == nil {
		t.Fatal("unknown scale accepted")
	}
	if len(ExperimentIDs()) < 12 {
		t.Fatalf("experiment registry too small: %v", ExperimentIDs())
	}
}
